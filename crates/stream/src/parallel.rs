//! Hash-partitioned parallel execution of a compiled plan.
//!
//! A [`ShardedExecutor`] runs `P` independent single-threaded [`Executor`]
//! shards, each an unmodified sequential engine, and routes the feed across
//! them:
//!
//! * **Tuples** of a *partitioned* stream go to the one shard selected by
//!   hashing the stream's partition attribute; tuples of *broadcast* streams
//!   go to every shard.
//! * **Punctuations** on a partitioned stream whose pattern pins the
//!   partition attribute to a constant `c` go only to shard `h(c)`; every
//!   other punctuation is broadcast.
//!
//! The partition attributes are one join-attribute **equivalence class**
//! (union-find over the query's equi-join predicates): in any fully-joining
//! combination all class attributes carry the same value, so every
//! contributing partitioned tuple lands in the same shard and each result is
//! emitted by exactly one shard. Streams with no attribute in the chosen
//! class fall back to broadcast.
//!
//! Per-shard purging stays safe: each shard is a sequential executor over a
//! consistent subsequence of the feed, and its purge decisions only ever
//! consume real punctuations — global promises about the stream — so a purge
//! that is sound for the whole stream is a fortiori sound for the shard's
//! slice of it (Theorem 1 applies shard-locally). Targeted routing also keeps
//! shards *able* to purge: any chained-purge requirement a shard derives
//! binds the partition attribute from shard-local rows, whose class values
//! hash to that very shard — so the covering punctuation is routed there.
//!
//! The payoff on purge-dominated workloads is that a targeted punctuation
//! triggers a purge cycle in **one** shard scanning `~live/P` candidates
//! instead of one cycle scanning all live state, cutting total purge work by
//! roughly the shard count — independent of how many cores execute the
//! shards.
//!
//! The sharded executor does not support a group-by stage (aggregation
//! requires a global view of each group); use the sequential [`Executor`]
//! for aggregating queries.

use std::path::Path;
use std::sync::mpsc;
use std::time::Instant;

use cjq_core::error::CoreResult;
use cjq_core::fxhash::{fx_hash_one, FxHashMap, FxHashSet};
use cjq_core::plan::Plan;
use cjq_core::query::Cjq;
use cjq_core::schema::{AttrId, AttrRef, StreamId};
use cjq_core::scheme::SchemeSet;
use cjq_core::value::Value;

use crate::checkpoint::{
    CheckpointStore, Dec, Enc, Fingerprint, InputCursor, Manifest, SnapshotKind,
};
use crate::element::StreamElement;
use crate::error::{ExecError, ExecResult};
use crate::exec::{ExecConfig, Executor, LiveStateSnapshot, RunResult};
use crate::guard::AdmissionFault;
use crate::metrics::Metrics;
use crate::sink::{CollectSink, CountSink, ResultSink};
use crate::source::{ElementBatch, Feed};

/// Elements per routed batch (amortizes channel synchronization).
const ROUTE_BATCH: usize = 256;

/// Caps a requested shard count at what the host can actually run
/// concurrently. Shards are real threads: asking for more of them than the
/// machine has cores buys no parallelism and still pays the routing,
/// channel-synchronization, and replicated-broadcast-state costs — which is
/// how `P = 4` ends up *slower* than `P = 2` on a two-core box. The floor of
/// 2 keeps purge-locality wins available even on single-core hosts (a
/// targeted punctuation still purges only one shard's slice). Never raises
/// the request; always at least 1.
#[must_use]
pub fn auto_shards(requested: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    requested.clamp(1, cores.max(2))
}

/// Renders a caught panic payload for [`ExecError::ShardPanicked`].
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How the feed's streams are split across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// Per stream (indexed by `StreamId.0`): the hash-partition attribute,
    /// or `None` when the stream is broadcast to every shard.
    pub attr: Vec<Option<AttrId>>,
    /// Number of shards.
    pub shards: usize,
}

fn uf_find(parent: &mut [usize], x: usize) -> usize {
    let mut root = x;
    while parent[root] != root {
        root = parent[root];
    }
    let mut cur = x;
    while parent[cur] != root {
        let next = parent[cur];
        parent[cur] = root;
        cur = next;
    }
    root
}

impl Partitioning {
    /// Computes the partitioning for `query` over `shards` shards.
    ///
    /// Join attributes are grouped into equivalence classes by union-find
    /// over the equi-join predicates. The class touching the most streams
    /// wins (deterministic tiebreak: smallest `(stream, attr)` member); each
    /// stream with an attribute in the winning class is partitioned on its
    /// smallest such attribute, all other streams broadcast.
    #[must_use]
    pub fn for_query(query: &Cjq, shards: usize) -> Partitioning {
        assert!(shards >= 1, "need at least one shard");
        let mut ids: FxHashMap<AttrRef, usize> = FxHashMap::default();
        let mut nodes: Vec<AttrRef> = Vec::new();
        let mut parent: Vec<usize> = Vec::new();
        let mut node = |r: AttrRef, parent: &mut Vec<usize>, nodes: &mut Vec<AttrRef>| {
            *ids.entry(r).or_insert_with(|| {
                nodes.push(r);
                parent.push(parent.len());
                parent.len() - 1
            })
        };
        for p in query.predicates() {
            let a = node(p.left, &mut parent, &mut nodes);
            let b = node(p.right, &mut parent, &mut nodes);
            let (ra, rb) = (uf_find(&mut parent, a), uf_find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }
        // Group members by class root.
        let mut classes: FxHashMap<usize, Vec<AttrRef>> = FxHashMap::default();
        for (i, &node) in nodes.iter().enumerate() {
            let root = uf_find(&mut parent, i);
            classes.entry(root).or_default().push(node);
        }
        // Winner: most distinct streams, then smallest (stream, attr) member.
        let mut best: Option<(usize, AttrRef, &Vec<AttrRef>)> = None;
        for members in classes.values() {
            let streams: FxHashSet<StreamId> = members.iter().map(|r| r.stream).collect();
            let min = *members.iter().min().expect("class is non-empty");
            let better = match &best {
                None => true,
                Some((n, m, _)) => streams.len() > *n || (streams.len() == *n && min < *m),
            };
            if better {
                best = Some((streams.len(), min, members));
            }
        }
        let mut attr: Vec<Option<AttrId>> = vec![None; query.n_streams()];
        if let Some((_, _, members)) = best {
            for r in members {
                let slot = &mut attr[r.stream.0];
                *slot = Some(slot.map_or(r.attr, |a| a.min(r.attr)));
            }
        }
        Partitioning { attr, shards }
    }

    /// The degenerate partitioning that broadcasts every stream to every
    /// shard. The registry's sharded front-end falls back to this when its
    /// tenants' per-query partitionings disagree: each shard then replays
    /// the whole feed and holds the full (replicated) state.
    #[must_use]
    pub fn broadcast(n_streams: usize, shards: usize) -> Partitioning {
        assert!(shards >= 1, "need at least one shard");
        Partitioning {
            attr: vec![None; n_streams],
            shards,
        }
    }

    /// Whether `stream` is hash-partitioned (as opposed to broadcast).
    #[inline]
    #[must_use]
    pub fn is_partitioned(&self, stream: StreamId) -> bool {
        self.attr[stream.0].is_some()
    }

    /// The shard a partition-attribute value routes to.
    #[inline]
    #[must_use]
    pub fn shard_of(&self, v: &Value) -> usize {
        (fx_hash_one(v) % self.shards as u64) as usize
    }

    /// Where an element goes: `Some(shard)` for a targeted element, `None`
    /// for broadcast.
    ///
    /// Malformed elements route deterministically rather than panicking the
    /// router: a tuple on an unknown stream broadcasts (every shard's
    /// admission guard refuses it, and the merge deduplicates); a tuple too
    /// short to carry its partition attribute goes to shard 0, which refuses
    /// it exactly once.
    #[must_use]
    pub fn route(&self, e: &StreamElement) -> Option<usize> {
        match e {
            StreamElement::Tuple(t) => self
                .attr
                .get(t.stream.0)
                .copied()
                .flatten()
                .map(|a| t.values.get(a.0).map_or(0, |v| self.shard_of(v))),
            StreamElement::Punctuation(p) => {
                self.attr.get(p.stream.0).copied().flatten().and_then(|a| {
                    p.constant_attrs()
                        .find(|(pa, _)| *pa == a)
                        .map(|(_, v)| self.shard_of(v))
                })
            }
        }
    }
}

/// Result of a sharded run.
///
/// Physical counters (`metrics.purged`, peaks, `purge_cycles`...) are summed
/// across shards — broadcast state is replicated, so they can exceed a
/// sequential run's. The *logical* fields deduplicate: broadcast state,
/// inserted identically in every shard, is unioned by (deterministic) slot
/// id; partitioned state is disjoint across shards and summed.
#[derive(Debug)]
pub struct ShardedRunResult {
    /// Merged result tuples, concatenated from the per-shard sinks by
    /// [`ShardedExecutor::run`] when [`ExecConfig::record_outputs`] is set
    /// (empty otherwise, and empty from
    /// [`ShardedExecutor::run_with_sinks`] — there the caller owns the
    /// sinks). Each result is produced by exactly one shard (the one its
    /// partition-class value hashes to), so this is the same multiset a
    /// sequential run emits, in per-shard order.
    pub outputs: Vec<Vec<Value>>,
    /// Merged metrics. `tuples_in`/`puncts_in`/`violations`/`outputs` and
    /// the tuple-side quarantine counts are logical feed-level counts;
    /// purge/peak counters and punctuation-side quarantine/repair counts are
    /// physical sums (broadcast punctuations are classified per shard);
    /// `stalled_streams` is the union across shards; `elapsed_ns` is the
    /// wall-clock time of the whole sharded run; the sample series is left
    /// empty (see the per-shard results).
    pub metrics: Metrics,
    /// Logical live join-state tuples at end of run.
    pub logical_join_state: usize,
    /// Logical live mirror tuples at end of run.
    pub logical_mirror: usize,
    /// Per-shard results (their `outputs` are empty — results flow to the
    /// per-shard sinks; everything else, including the sample series, is
    /// intact).
    pub shards: Vec<RunResult>,
}

/// A compiled plan, runnable over `P` hash-partitioned shards.
#[derive(Debug)]
pub struct ShardedExecutor {
    query: Cjq,
    schemes: SchemeSet,
    plan: Plan,
    cfg: ExecConfig,
    partitioning: Partitioning,
    /// Per operator (bottom-up), per port: the port's span. Used to classify
    /// each port as disjoint (spans a partitioned stream) or replicated.
    port_spans: Vec<Vec<Vec<StreamId>>>,
    /// Static per-port bound certificates applied to every shard executor
    /// (see [`Executor::set_port_bounds`]). A shard's port holds a subset of
    /// the logical port state — for partitioned ports a hash slice, for
    /// broadcast ports a replica — so checking each shard against the
    /// *logical* bound is sound.
    port_bounds: Option<Vec<Option<u64>>>,
}

impl ShardedExecutor {
    /// Compiles `plan` for sharded execution over `shards` shards.
    ///
    /// Validation matches [`Executor::compile`]; the partitioning is derived
    /// from the query alone (see [`Partitioning::for_query`]).
    pub fn compile(
        query: &Cjq,
        schemes: &SchemeSet,
        plan: &Plan,
        cfg: ExecConfig,
        shards: usize,
    ) -> CoreResult<Self> {
        let template = Executor::compile(query, schemes, plan, cfg)?;
        let port_spans = template
            .operators()
            .iter()
            .map(|op| op.port_spans().to_vec())
            .collect();
        Ok(ShardedExecutor {
            query: query.clone(),
            schemes: schemes.clone(),
            plan: plan.clone(),
            cfg,
            partitioning: Partitioning::for_query(query, shards),
            port_spans,
            port_bounds: None,
        })
    }

    /// Arms per-port bound certificates on every shard executor
    /// ([`Executor::set_port_bounds`]); a violation in any shard surfaces as
    /// [`ExecError::Shard`] wrapping [`ExecError::PortBoundExceeded`].
    ///
    /// # Panics
    /// Panics (at run time, in each shard) if `bounds.len()` differs from
    /// the number of flattened operator ports.
    pub fn set_port_bounds(&mut self, bounds: Vec<Option<u64>>) {
        self.port_bounds = if bounds.iter().all(Option::is_none) {
            None
        } else {
            Some(bounds)
        };
    }

    /// Like [`ShardedExecutor::compile`], but first caps `shards` at the
    /// host's available cores via [`auto_shards`] — the right default for
    /// throughput-sensitive callers that would otherwise oversubscribe.
    pub fn compile_auto(
        query: &Cjq,
        schemes: &SchemeSet,
        plan: &Plan,
        cfg: ExecConfig,
        shards: usize,
    ) -> CoreResult<Self> {
        ShardedExecutor::compile(query, schemes, plan, cfg, auto_shards(shards))
    }

    /// The stream-to-shard partitioning in effect.
    #[must_use]
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Runs the whole feed through `P` shard workers and merges the results.
    ///
    /// Results are collected per shard into [`CollectSink`]s when
    /// [`ExecConfig::record_outputs`] is set (and concatenated into
    /// `ShardedRunResult::outputs`), or merely counted otherwise. See
    /// [`ShardedExecutor::run_with_sinks`] for the routing details and for
    /// custom sinks.
    ///
    /// # Panics
    /// Panics if the feed exceeds `u32::MAX` elements or a shard fails
    /// (rendering the shard's [`ExecError`]); use
    /// [`ShardedExecutor::try_run`] to handle shard failures as values.
    #[must_use]
    pub fn run(&self, feed: &Feed) -> ShardedRunResult {
        self.try_run(feed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ShardedExecutor::run`]: shard panics and
    /// per-shard execution errors surface as [`ExecError`]s.
    pub fn try_run(&self, feed: &Feed) -> ExecResult<ShardedRunResult> {
        if self.cfg.record_outputs {
            let (mut result, sinks) = self.try_run_with_sinks(feed, |_| CollectSink::new())?;
            result.outputs = sinks.into_iter().flat_map(|s| s.rows).collect();
            Ok(result)
        } else {
            Ok(self.try_run_with_sinks(feed, |_| CountSink::new())?.0)
        }
    }

    /// Runs the whole feed through `P` shard workers, streaming each shard's
    /// results into its own sink (`make_sink(shard)`), and merges the
    /// metrics. Returns the per-shard sinks alongside — every result row is
    /// emitted by exactly one shard, so their union is the sequential result
    /// multiset.
    ///
    /// # Panics
    /// Panics if the feed exceeds `u32::MAX` elements or a shard fails
    /// (rendering the shard's [`ExecError`]); use
    /// [`ShardedExecutor::try_run_with_sinks`] to handle shard failures as
    /// values.
    pub fn run_with_sinks<S, F>(&self, feed: &Feed, make_sink: F) -> (ShardedRunResult, Vec<S>)
    where
        S: ResultSink + Send,
        F: Fn(usize) -> S,
    {
        self.try_run_with_sinks(feed, make_sink)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ShardedExecutor::run_with_sinks`], with shard
    /// supervision.
    ///
    /// With `P = 1` the router and channels are bypassed entirely: the one
    /// shard is a plain sequential [`Executor`] fed the whole feed through
    /// the batched data path, so single-shard runs cost the same as
    /// [`Executor::run_with_sink`]. With `P >= 2` the router walks the feed
    /// once, sending element *indices* in batches over bounded channels;
    /// workers borrow the feed directly and gather their routed subsequences
    /// into reusable [`ElementBatch`]es, so no element is copied on the way
    /// in.
    ///
    /// **Supervision.** Each worker runs inside `catch_unwind`: a panic in a
    /// shard (operator bug, poisoned sink, certificate-verifier trip) is
    /// caught and reported as [`ExecError::ShardPanicked`] with the shard
    /// index and panic message; a typed failure inside a shard (admission
    /// under `Strict`, state-budget breach) comes back as
    /// [`ExecError::Shard`] wrapping the source error. The process never
    /// aborts. When a shard dies mid-feed its channel disconnects; the
    /// router marks it dead and keeps feeding the survivors, so every
    /// surviving shard drains, purges, and reports before the first failure
    /// is returned. On failure the per-shard sinks are dropped — results
    /// already streamed to external sinks may be partial.
    ///
    /// # Errors
    /// The first failing shard's error, by shard index; surviving shards are
    /// fully drained first.
    pub fn try_run_with_sinks<S, F>(
        &self,
        feed: &Feed,
        make_sink: F,
    ) -> ExecResult<(ShardedRunResult, Vec<S>)>
    where
        S: ResultSink + Send,
        F: Fn(usize) -> S,
    {
        let p = self.partitioning.shards;
        let start = Instant::now();
        let mut execs = self.compile_shards();

        if p == 1 {
            // Single shard: everything routes to it, in feed order. Skip the
            // router, the channels, and the worker thread.
            let mut sink = make_sink(0);
            let (result, snapshot) = execs
                .pop()
                .expect("one shard")
                .try_run_with_sink_detailed(feed, &mut sink)
                .map_err(|e| ExecError::Shard {
                    shard: 0,
                    source: Box::new(e),
                })?;
            let router_tuples = result.metrics.tuples_in
                + result.metrics.violations
                + result.metrics.shape_refused_rows();
            let router_puncts = result.metrics.puncts_in;
            let merged = self.merge(
                vec![(result, snapshot)],
                router_tuples,
                router_puncts,
                start,
            );
            return Ok((merged, vec![sink]));
        }

        assert!(u32::try_from(feed.len()).is_ok(), "feed too long to route");
        let mut router_tuples = 0u64;
        let mut router_puncts = 0u64;
        let finished: Vec<ExecResult<(RunResult, LiveStateSnapshot, S)>> =
            std::thread::scope(|scope| {
                let elements = feed.elements();
                let mut senders = Vec::with_capacity(p);
                let mut handles = Vec::with_capacity(p);
                for (shard, exec) in execs.into_iter().enumerate() {
                    let (tx, rx) = mpsc::sync_channel::<Vec<u32>>(4);
                    senders.push(tx);
                    let sink = make_sink(shard);
                    handles.push(scope.spawn(move || {
                        // Everything the worker touches is moved in and either
                        // returned or dropped on unwind — no state outlives a
                        // caught panic, so the unwind-safety assertion holds.
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            move || -> ExecResult<(RunResult, LiveStateSnapshot, S)> {
                                let mut exec = exec;
                                let mut sink = sink;
                                let mut batch = ElementBatch::new();
                                while let Ok(idxs) = rx.recv() {
                                    batch.gather_indexed(elements, &idxs);
                                    exec.try_push_batch(&batch, &mut sink)?;
                                }
                                sink.finish();
                                let (result, snapshot) = exec.finish_detailed();
                                Ok((result, snapshot, sink))
                            },
                        ));
                        match caught {
                            Ok(Ok(done)) => Ok(done),
                            Ok(Err(e)) => Err(ExecError::Shard {
                                shard,
                                source: Box::new(e),
                            }),
                            Err(payload) => Err(ExecError::ShardPanicked {
                                shard,
                                message: panic_message(payload.as_ref()),
                            }),
                        }
                    }));
                }
                let mut dead = vec![false; p];
                let mut buffers: Vec<Vec<u32>> = vec![Vec::with_capacity(ROUTE_BATCH); p];
                let mut send_to = |shard: usize, idx: u32| {
                    if dead[shard] {
                        return;
                    }
                    let buf = &mut buffers[shard];
                    buf.push(idx);
                    if buf.len() >= ROUTE_BATCH {
                        let full = std::mem::replace(buf, Vec::with_capacity(ROUTE_BATCH));
                        if senders[shard].send(full).is_err() {
                            // The shard died and dropped its receiver. Stop
                            // feeding it; the survivors keep running and the
                            // failure surfaces from the join below.
                            dead[shard] = true;
                        }
                    }
                };
                for (i, e) in elements.iter().enumerate() {
                    if e.is_punctuation() {
                        router_puncts += 1;
                    } else {
                        router_tuples += 1;
                    }
                    let idx = i as u32;
                    match self.partitioning.route(e) {
                        Some(shard) => send_to(shard, idx),
                        None => (0..p).for_each(|shard| send_to(shard, idx)),
                    }
                }
                for (shard, buf) in buffers.into_iter().enumerate() {
                    if !dead[shard] && !buf.is_empty() {
                        let _ = senders[shard].send(buf);
                    }
                }
                drop(senders); // close channels: workers drain, purge, and report
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(shard, h)| {
                        h.join().unwrap_or_else(|payload| {
                            // The worker itself never unwinds (catch_unwind is
                            // its whole body), but keep the join structured.
                            Err(ExecError::ShardPanicked {
                                shard,
                                message: panic_message(payload.as_ref()),
                            })
                        })
                    })
                    .collect()
            });

        let mut shards_snaps = Vec::with_capacity(p);
        let mut sinks = Vec::with_capacity(p);
        let mut first_err: Option<ExecError> = None;
        for res in finished {
            match res {
                Ok((result, snapshot, sink)) => {
                    shards_snaps.push((result, snapshot));
                    sinks.push(sink);
                }
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let merged = self.merge(shards_snaps, router_tuples, router_puncts, start);
        Ok((merged, sinks))
    }

    /// Merges per-shard results into one [`ShardedRunResult`] (with empty
    /// `outputs` — the caller owns the sinks).
    fn merge(
        &self,
        shards_snaps: Vec<(RunResult, LiveStateSnapshot)>,
        router_tuples: u64,
        router_puncts: u64,
        start: Instant,
    ) -> ShardedRunResult {
        let (shards, snapshots): (Vec<RunResult>, Vec<LiveStateSnapshot>) =
            shards_snaps.into_iter().unzip();
        let n_streams = self.query.n_streams();
        // Physical accumulation first: every counter straight-summed through
        // the associative [`Metrics::merge_from`] (outputs, purge work,
        // batch/probe counters, peaks, repairs, shedding, stalls, ...).
        // The *logical* fields — violations, the quarantine trio, and the
        // router-side element counts — are recomputed below from the
        // partitioning table and overwrite the physical sums.
        let mut metrics = Metrics::default();
        for r in &shards {
            metrics.merge_from(&r.metrics);
        }
        let mut violations_by_stream = vec![0u64; n_streams];
        for (s, out) in violations_by_stream.iter_mut().enumerate() {
            let per_shard =
                |r: &RunResult| r.metrics.violations_by_stream.get(s).copied().unwrap_or(0);
            *out = if self.partitioning.attr[s].is_some() {
                // Each violating tuple is routed (and rejected) exactly once.
                shards.iter().map(per_shard).sum()
            } else {
                // Broadcast streams replay identically in every shard.
                per_shard(&shards[0])
            };
        }
        metrics.violations = violations_by_stream.iter().sum();
        metrics.violations_by_stream = violations_by_stream;

        // Quarantine merge. Tuple-side quarantines merge *logically* via the
        // (stream, reason) matrix: each tuple of a partitioned stream is
        // routed — and refused — exactly once (sum the shards), a broadcast
        // stream's tuples replay identically in every shard (take shard 0).
        // Rows for unknown streams land past the partitioning table and are
        // broadcast. Punctuation-side quarantines and repairs stay
        // *physical* per-shard sums: a broadcast punctuation is classified
        // independently against each shard's local punctuation store, so
        // there is no shared logical count to deduplicate to.
        let w = AdmissionFault::REASONS;
        let rows_len = shards
            .iter()
            .map(|r| r.metrics.quarantined_rows.len())
            .max()
            .unwrap_or(0);
        let mut matrix = vec![0u64; rows_len];
        for (i, out) in matrix.iter_mut().enumerate() {
            let s = i / w;
            let per = |r: &RunResult| r.metrics.quarantined_rows.get(i).copied().unwrap_or(0);
            *out = if self.partitioning.attr.get(s).copied().flatten().is_some() {
                shards.iter().map(per).sum()
            } else {
                per(&shards[0])
            };
        }
        let shard_punct_side = |r: &RunResult, s: usize| -> u64 {
            let total = r.metrics.quarantined_by_stream.get(s).copied().unwrap_or(0);
            let rows: u64 = (0..w)
                .map(|c| {
                    r.metrics
                        .quarantined_rows
                        .get(s * w + c)
                        .copied()
                        .unwrap_or(0)
                })
                .sum();
            total - rows
        };
        let q_streams = shards
            .iter()
            .map(|r| r.metrics.quarantined_by_stream.len())
            .max()
            .unwrap_or(0)
            .max(rows_len / w);
        let mut q_by_stream = vec![0u64; q_streams];
        for (s, out) in q_by_stream.iter_mut().enumerate() {
            let tuple_side: u64 = (0..w)
                .map(|c| matrix.get(s * w + c).copied().unwrap_or(0))
                .sum();
            let punct_side: u64 = shards.iter().map(|r| shard_punct_side(r, s)).sum();
            *out = tuple_side + punct_side;
        }
        let q_reasons = shards
            .iter()
            .map(|r| r.metrics.quarantined_by_reason.len())
            .max()
            .unwrap_or(0);
        let mut q_by_reason = vec![0u64; q_reasons];
        for (c, out) in q_by_reason.iter_mut().enumerate() {
            let tuple_side: u64 = (0..rows_len / w)
                .map(|s| matrix.get(s * w + c).copied().unwrap_or(0))
                .sum();
            let punct_side: u64 = shards
                .iter()
                .map(|r| {
                    let total = r.metrics.quarantined_by_reason.get(c).copied().unwrap_or(0);
                    let rows: u64 = (0..r.metrics.quarantined_rows.len() / w)
                        .map(|s| r.metrics.quarantined_rows[s * w + c])
                        .sum();
                    total - rows
                })
                .sum();
            *out = tuple_side + punct_side;
        }
        metrics.quarantined = q_by_stream.iter().sum();
        let shape_refused: u64 = matrix
            .iter()
            .enumerate()
            .filter(|(i, _)| i % w != 0)
            .map(|(_, v)| *v)
            .sum();
        metrics.quarantined_by_stream = q_by_stream;
        metrics.quarantined_by_reason = q_by_reason;
        metrics.quarantined_rows = matrix;

        metrics.tuples_in = router_tuples - metrics.violations - shape_refused;
        metrics.puncts_in = router_puncts;
        metrics.elapsed_ns = start.elapsed().as_nanos();

        let merge = |slot_lists: Vec<&Vec<usize>>, disjoint: bool| -> usize {
            if disjoint {
                slot_lists.iter().map(|l| l.len()).sum()
            } else {
                let union: FxHashSet<usize> =
                    slot_lists.iter().flat_map(|l| l.iter().copied()).collect();
                union.len()
            }
        };
        let mut logical_join_state = 0usize;
        for (op, ports) in self.port_spans.iter().enumerate() {
            for (port, span) in ports.iter().enumerate() {
                let disjoint = span.iter().any(|&s| self.partitioning.is_partitioned(s));
                let lists = snapshots
                    .iter()
                    .map(|s| &s.op_port_slots[op][port])
                    .collect();
                logical_join_state += merge(lists, disjoint);
            }
        }
        let mut logical_mirror = 0usize;
        for s in 0..n_streams {
            let disjoint = self.partitioning.attr[s].is_some();
            let lists = snapshots.iter().map(|snap| &snap.mirror_slots[s]).collect();
            logical_mirror += merge(lists, disjoint);
        }

        ShardedRunResult {
            outputs: Vec::new(),
            metrics,
            logical_join_state,
            logical_mirror,
            shards,
        }
    }

    /// Compiles the `P` per-shard executors: the shared config with each
    /// shard's own spill tag (concurrent shards must never share segment
    /// files), with the static port bounds armed when present.
    fn compile_shards(&self) -> Vec<Executor> {
        (0..self.partitioning.shards)
            .map(|shard| {
                let mut cfg = self.cfg;
                if let Some(t) = cfg.tiering.as_mut() {
                    t.shard_tag = shard as u32;
                }
                let mut exec = Executor::compile(&self.query, &self.schemes, &self.plan, cfg)
                    .expect("validated in ShardedExecutor::compile");
                if let Some(bounds) = &self.port_bounds {
                    exec.set_port_bounds(bounds.clone());
                }
                exec
            })
            .collect()
    }

    /// Structural fingerprint of a whole shard fleet: shard count plus each
    /// shard's [`Executor::fingerprint`] (which differ only in the spill
    /// shard tag). A sharded snapshot only overlays onto a fleet compiled
    /// from the same query, plan, schemes, config, and shard count.
    fn combined_fingerprint(execs: &[Executor]) -> u64 {
        let mut fp = Fingerprint::default();
        fp.word(execs.len() as u64);
        for e in execs {
            fp.word(e.fingerprint());
        }
        fp.finish()
    }

    /// Builds the sharded checkpoint payload: manifest, router element
    /// counters, then every shard's snapshot in shard order.
    fn sharded_payload(
        execs: &[Executor],
        every: u64,
        cursor: &InputCursor,
        router_tuples: u64,
        router_puncts: u64,
    ) -> ExecResult<Vec<u8>> {
        if execs.iter().any(Executor::has_groupby) {
            return Err(ExecError::CheckpointCorrupt {
                path: "<config>".into(),
                detail: "group-by stages are not checkpointable: open-group state \
                         is not serialized"
                    .into(),
            });
        }
        let mut e = Enc::new();
        Manifest {
            kind: SnapshotKind::Sharded,
            fingerprint: Self::combined_fingerprint(execs),
            every,
            cursor: cursor.clone(),
        }
        .write(&mut e);
        e.u64(router_tuples);
        e.u64(router_puncts);
        e.usize(execs.len());
        for exec in execs {
            exec.write_snapshot(&mut e);
        }
        Ok(e.buf)
    }

    /// Runs the whole feed through `P` *synchronous* shard executors with
    /// punctuation-aligned checkpointing every `every` elements into `dir`.
    ///
    /// Unlike [`ShardedExecutor::try_run`] this uses no worker threads: the
    /// router feeds each element to its shard (or all shards, when
    /// broadcast) inline, so a checkpoint taken between elements is a
    /// consistent cut across the whole fleet — one snapshot file holds every
    /// shard's state plus the global input cursor. The merged result is the
    /// same logical result the threaded runner produces (same routed
    /// subsequences in the same order), with `outputs` concatenated in shard
    /// order.
    pub fn try_run_checkpointed(
        &self,
        feed: &Feed,
        dir: &Path,
        every: u64,
    ) -> ExecResult<ShardedRunResult> {
        let store =
            CheckpointStore::open(dir, every).map_err(|e| ExecError::CheckpointCorrupt {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })?;
        let cursor = InputCursor::zero(self.query.n_streams());
        let execs = self.compile_shards();
        self.run_checkpointed_inner(feed, store, cursor, execs, 0, 0, 0, 0)
    }

    /// Restores a whole shard fleet from the newest valid snapshot in `dir`
    /// and resumes the feed from the recorded cursor, continuing to
    /// checkpoint at the recorded cadence. `self` must be compiled from the
    /// same query, plan, schemes, config, and shard count as the executor
    /// that wrote the snapshots ([`ExecError::RestoreMismatch`] otherwise).
    /// A corrupt newest snapshot falls back to the previous retained one;
    /// an empty directory (crash before the first commit) cold-starts the
    /// whole feed at cadence `every` (ignored otherwise — the manifest's
    /// recorded cadence wins). The result is byte-identical to an
    /// uninterrupted [`ShardedExecutor::try_run_checkpointed`] over the same
    /// feed (modulo wall time and the checkpoint counters themselves).
    pub fn try_resume(&self, feed: &Feed, dir: &Path, every: u64) -> ExecResult<ShardedRunResult> {
        if crate::checkpoint::list_snapshots(dir).is_empty() {
            return self.try_run_checkpointed(feed, dir, every);
        }
        let corrupt = |detail: String| ExecError::CheckpointCorrupt {
            path: dir.display().to_string(),
            detail,
        };
        let (payload, fallbacks, path) = CheckpointStore::load_latest(dir).map_err(&corrupt)?;
        let mut execs = self.compile_shards();
        let mut d = Dec::new(&payload);
        let manifest = Manifest::read(&mut d).map_err(|e| corrupt(e.to_string()))?;
        if manifest.kind != SnapshotKind::Sharded {
            return Err(corrupt(format!(
                "snapshot at {} is not a sharded snapshot",
                path.display()
            )));
        }
        let expected = Self::combined_fingerprint(&execs);
        if manifest.fingerprint != expected {
            return Err(ExecError::RestoreMismatch {
                expected,
                found: manifest.fingerprint,
            });
        }
        let router_tuples = d.u64().map_err(|e| corrupt(e.to_string()))?;
        let router_puncts = d.u64().map_err(|e| corrupt(e.to_string()))?;
        let p = d.usize().map_err(|e| corrupt(e.to_string()))?;
        if p != execs.len() {
            return Err(corrupt(format!(
                "snapshot holds {p} shards but this executor has {}",
                execs.len()
            )));
        }
        for exec in &mut execs {
            exec.read_snapshot(&mut d)
                .map_err(|e| corrupt(e.to_string()))?;
        }
        d.expect_end().map_err(|e| corrupt(e.to_string()))?;
        let store =
            CheckpointStore::open(dir, manifest.every).map_err(|e| corrupt(e.to_string()))?;
        self.run_checkpointed_inner(
            feed,
            store,
            manifest.cursor,
            execs,
            router_tuples,
            router_puncts,
            1,
            fallbacks,
        )
    }

    /// The shared synchronous loop behind
    /// [`ShardedExecutor::try_run_checkpointed`] and
    /// [`ShardedExecutor::try_resume`]: routes the feed from the cursor
    /// position, checkpoints at due punctuations, drains every shard, and
    /// merges.
    #[allow(clippy::too_many_arguments)]
    fn run_checkpointed_inner(
        &self,
        feed: &Feed,
        mut store: CheckpointStore,
        mut cursor: InputCursor,
        mut execs: Vec<Executor>,
        mut router_tuples: u64,
        mut router_puncts: u64,
        restores: u64,
        fallbacks: u64,
    ) -> ExecResult<ShardedRunResult> {
        let start = Instant::now();
        let skip = usize::try_from(cursor.elements).unwrap_or(usize::MAX);
        for e in feed.elements().iter().skip(skip) {
            let (stream, is_punct) = match e {
                StreamElement::Tuple(t) => (t.stream, false),
                StreamElement::Punctuation(p) => (p.stream, true),
            };
            if is_punct {
                router_puncts += 1;
            } else {
                router_tuples += 1;
            }
            match self.partitioning.route(e) {
                Some(shard) => execs[shard].try_push(e).map_err(|err| ExecError::Shard {
                    shard,
                    source: Box::new(err),
                })?,
                None => {
                    for (shard, exec) in execs.iter_mut().enumerate() {
                        exec.try_push(e).map_err(|err| ExecError::Shard {
                            shard,
                            source: Box::new(err),
                        })?;
                    }
                }
            }
            cursor.advance(stream);
            store.note_element();
            if store.due(is_punct) {
                let payload = Self::sharded_payload(
                    &execs,
                    store.every(),
                    &cursor,
                    router_tuples,
                    router_puncts,
                )?;
                let rows: u64 = execs.iter().map(Executor::checkpointable_rows).sum();
                store
                    .commit(&payload, rows)
                    .map_err(|e| ExecError::CheckpointCorrupt {
                        path: store.dir().display().to_string(),
                        detail: e.to_string(),
                    })?;
            }
        }
        let mut shards_snaps = Vec::with_capacity(execs.len());
        for exec in execs {
            shards_snaps.push(exec.finish_detailed());
        }
        let mut merged = self.merge(shards_snaps, router_tuples, router_puncts, start);
        merged.metrics.checkpoints_written += store.checkpoints_written;
        merged.metrics.checkpoint_rows += store.checkpoint_rows;
        merged.metrics.restores += restores;
        merged.metrics.snapshot_fallbacks += fallbacks;
        if self.cfg.record_outputs {
            let mut outputs = Vec::new();
            for r in &mut merged.shards {
                outputs.append(&mut r.outputs);
            }
            merged.outputs = outputs;
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use cjq_core::fixtures;
    use cjq_core::punctuation::Punctuation;
    use cjq_core::schema::AttrId;

    fn ival(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn auction_partitions_both_streams_on_itemid() {
        let (q, _) = fixtures::auction();
        let part = Partitioning::for_query(&q, 4);
        assert_eq!(part.attr, vec![Some(AttrId(1)), Some(AttrId(1))]);
        assert!(part.is_partitioned(StreamId(0)));
    }

    #[test]
    fn fig5_partitions_the_a_class_and_broadcasts_s2() {
        // Classes: {S1.A,S3.A}, {S1.B,S2.B}, {S2.C,S3.C} — all touch two
        // streams; the tiebreak picks the one containing (S1, A).
        let (q, _) = fixtures::fig5();
        let part = Partitioning::for_query(&q, 2);
        assert_eq!(part.attr[0], Some(AttrId(0)));
        assert_eq!(part.attr[1], None, "S2 has no attribute in the A-class");
        assert_eq!(part.attr[2], Some(AttrId(0)));
    }

    #[test]
    fn routing_targets_constants_on_the_partition_attribute() {
        let (q, _) = fixtures::auction();
        let part = Partitioning::for_query(&q, 4);
        let t = StreamElement::from(Tuple::of(1, vec![ival(9), ival(42), ival(1)]));
        let shard = part.route(&t).expect("partitioned stream is targeted");
        // A punctuation pinning itemid=42 goes to the same shard.
        let p = StreamElement::from(Punctuation::with_constants(
            StreamId(1),
            3,
            &[(AttrId(1), ival(42))],
        ));
        assert_eq!(part.route(&p), Some(shard));
        // A punctuation not pinning the partition attribute broadcasts.
        let wild = StreamElement::from(Punctuation::with_constants(
            StreamId(1),
            3,
            &[(AttrId(0), ival(9))],
        ));
        assert_eq!(part.route(&wild), None);
    }

    #[test]
    fn sharded_auction_matches_sequential() {
        let (q, r) = fixtures::auction();
        let plan = Plan::mjoin_all(&q);
        let mut feed = Feed::new();
        for i in 0..60i64 {
            feed.push(Tuple::of(
                0,
                vec![ival(7), ival(i), Value::str("x"), ival(100)],
            ));
            feed.push(Tuple::of(1, vec![ival(3), ival(i), ival(1)]));
            feed.push(Tuple::of(1, vec![ival(4), ival(i), ival(2)]));
            feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                StreamId(0),
                4,
                &[(AttrId(1), ival(i))],
            )));
            feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                StreamId(1),
                3,
                &[(AttrId(1), ival(i))],
            )));
        }
        let seq = Executor::compile(&q, &r, &plan, ExecConfig::default())
            .unwrap()
            .run(&feed);
        for p in [1, 3] {
            let sharded = ShardedExecutor::compile(&q, &r, &plan, ExecConfig::default(), p)
                .unwrap()
                .run(&feed);
            let mut a = seq.outputs.clone();
            let mut b = sharded.outputs.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "P={p} output multiset differs");
            assert_eq!(sharded.metrics.outputs, seq.metrics.outputs);
            assert_eq!(sharded.metrics.tuples_in, seq.metrics.tuples_in);
            assert_eq!(sharded.metrics.puncts_in, seq.metrics.puncts_in);
            // Fully punctuation-closed feed: all state purged everywhere.
            assert_eq!(sharded.logical_join_state, 0);
            assert_eq!(seq.metrics.last().unwrap().join_state, 0);
        }
    }

    #[test]
    fn sharded_run_counts_violations_once() {
        let (q, r) = fixtures::auction();
        let plan = Plan::mjoin_all(&q);
        let feed = Feed::from_elements(vec![
            StreamElement::Punctuation(Punctuation::with_constants(
                StreamId(1),
                3,
                &[(AttrId(1), ival(5))],
            )),
            // Violates the punctuation above — rejected by exactly one shard.
            Tuple::of(1, vec![ival(1), ival(5), ival(1)]).into(),
            Tuple::of(1, vec![ival(1), ival(6), ival(1)]).into(),
        ]);
        let sharded = ShardedExecutor::compile(&q, &r, &plan, ExecConfig::default(), 4)
            .unwrap()
            .run(&feed);
        assert_eq!(sharded.metrics.violations, 1);
        assert_eq!(sharded.metrics.tuples_in, 1);
    }
}
