//! Feeds: finite, ordered sequences of stream elements driving an execution.
//!
//! The paper's input manager (Fig. 2) buffers per-stream arrivals and hands
//! the query processor one interleaved sequence. A [`Feed`] is that sequence;
//! builders interleave per-stream scripts deterministically so experiments
//! are reproducible.

use cjq_core::schema::StreamId;

use crate::element::StreamElement;

/// A finite, ordered sequence of elements from any number of streams.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Feed {
    items: Vec<StreamElement>,
}

impl Feed {
    /// Creates an empty feed.
    #[must_use]
    pub fn new() -> Self {
        Feed::default()
    }

    /// Wraps an explicit element sequence.
    #[must_use]
    pub fn from_elements(items: Vec<StreamElement>) -> Self {
        Feed { items }
    }

    /// Appends one element.
    pub fn push(&mut self, e: impl Into<StreamElement>) {
        self.items.push(e.into());
    }

    /// Interleaves several per-stream scripts round-robin, one element from
    /// each non-exhausted script per cycle. Order within a script is kept.
    #[must_use]
    pub fn round_robin(scripts: Vec<Vec<StreamElement>>) -> Self {
        let mut iters: Vec<std::vec::IntoIter<StreamElement>> =
            scripts.into_iter().map(Vec::into_iter).collect();
        let mut items = Vec::new();
        loop {
            let mut progressed = false;
            for it in &mut iters {
                if let Some(e) = it.next() {
                    items.push(e);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        Feed { items }
    }

    /// Interleaves per-stream scripts with relative `weights` (a rate-based
    /// arrival model): each step deterministically picks the script with the
    /// largest accumulated credit, so a weight-2 script emits twice as often
    /// as a weight-1 script. Order within a script is kept.
    ///
    /// # Panics
    /// Panics if `weights.len() != scripts.len()` or a weight is 0.
    #[must_use]
    pub fn weighted(scripts: Vec<Vec<StreamElement>>, weights: &[u32]) -> Self {
        assert_eq!(scripts.len(), weights.len(), "one weight per script");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<StreamElement>>> = scripts
            .into_iter()
            .map(|s| s.into_iter().peekable())
            .collect();
        let mut credit: Vec<u64> = vec![0; iters.len()];
        let mut items = Vec::new();
        loop {
            // Accrue credit only for non-exhausted scripts; pick the richest.
            let mut best: Option<usize> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if it.peek().is_some() {
                    credit[i] += u64::from(weights[i]);
                    if best.is_none_or(|b| credit[i] > credit[b]) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            credit[i] = 0;
            items.push(iters[i].next().expect("peeked"));
        }
        Feed { items }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the feed is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The elements in order.
    #[must_use]
    pub fn elements(&self) -> &[StreamElement] {
        &self.items
    }

    /// Counts elements belonging to `stream`.
    #[must_use]
    pub fn count_for(&self, stream: StreamId) -> usize {
        self.items.iter().filter(|e| e.stream() == stream).count()
    }

    /// Counts punctuations in the feed.
    #[must_use]
    pub fn punctuation_count(&self) -> usize {
        self.items.iter().filter(|e| e.is_punctuation()).count()
    }
}

impl IntoIterator for Feed {
    type Item = StreamElement;
    type IntoIter = std::vec::IntoIter<StreamElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a Feed {
    type Item = &'a StreamElement;
    type IntoIter = std::slice::Iter<'a, StreamElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<StreamElement> for Feed {
    fn from_iter<T: IntoIterator<Item = StreamElement>>(iter: T) -> Self {
        Feed {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use cjq_core::value::Value;

    fn t(stream: usize, v: i64) -> StreamElement {
        Tuple::of(stream, [Value::Int(v)]).into()
    }

    #[test]
    fn round_robin_interleaves() {
        let feed = Feed::round_robin(vec![
            vec![t(0, 1), t(0, 2)],
            vec![t(1, 10), t(1, 20), t(1, 30)],
        ]);
        let order: Vec<usize> = feed.elements().iter().map(|e| e.stream().0).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 1]);
        assert_eq!(feed.count_for(StreamId(1)), 3);
        assert_eq!(feed.punctuation_count(), 0);
    }

    #[test]
    fn weighted_interleaving_respects_rates() {
        // Stream 1 at weight 3, stream 0 at weight 1: among any window the
        // heavy stream appears ~3x as often until it runs out.
        let feed = Feed::weighted(
            vec![
                (0..10).map(|i| t(0, i)).collect(),
                (0..30).map(|i| t(1, i)).collect(),
            ],
            &[1, 3],
        );
        assert_eq!(feed.len(), 40);
        let first_20: Vec<usize> = feed.elements()[..20].iter().map(|e| e.stream().0).collect();
        let heavy = first_20.iter().filter(|&&s| s == 1).count();
        assert!((13..=17).contains(&heavy), "heavy stream count {heavy}");
        // Relative order within each script is preserved.
        let s0: Vec<&StreamElement> = feed
            .elements()
            .iter()
            .filter(|e| e.stream() == StreamId(0))
            .collect();
        for (i, e) in s0.iter().enumerate() {
            assert_eq!(**e, t(0, i as i64));
        }
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn weighted_rejects_zero_weights() {
        let _ = Feed::weighted(vec![vec![]], &[0]);
    }

    #[test]
    fn push_and_iterate() {
        let mut feed = Feed::new();
        assert!(feed.is_empty());
        feed.push(Tuple::of(0, [Value::Int(1)]));
        feed.push(cjq_core::punctuation::Punctuation::with_constants(
            StreamId(0),
            1,
            &[],
        ));
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.punctuation_count(), 1);
        let collected: Feed = feed.clone().into_iter().collect();
        assert_eq!(collected, feed);
        assert_eq!((&feed).into_iter().count(), 2);
    }
}
