//! Feeds: finite, ordered sequences of stream elements driving an execution.
//!
//! The paper's input manager (Fig. 2) buffers per-stream arrivals and hands
//! the query processor one interleaved sequence. A [`Feed`] is that sequence;
//! builders interleave per-stream scripts deterministically so experiments
//! are reproducible.

use cjq_core::punctuation::Punctuation;
use cjq_core::schema::StreamId;
use cjq_core::value::Value;

use crate::element::StreamElement;

/// One item of an [`ElementBatch`]: a run of consecutive same-stream tuples
/// (their rows live contiguously in the batch arena) or one punctuation.
#[derive(Debug, Clone, Copy)]
pub enum BatchItem<'a> {
    /// `rows` consecutive tuples of `stream`, stored stride-packed in the
    /// batch arena starting at flat offset `start` with `width` columns each.
    Run {
        /// The tuples' stream.
        stream: StreamId,
        /// Columns per row.
        width: usize,
        /// Flat arena offset of the first row.
        start: usize,
        /// Number of rows in the run.
        rows: usize,
    },
    /// A punctuation, borrowed from the feed (punctuations are not copied).
    Punct(&'a Punctuation),
}

/// A micro-batch of feed elements in arrival order, with tuple rows gathered
/// into one flat value arena.
///
/// Gathering groups maximal runs of consecutive same-stream tuples so the
/// executor can drive each run through the operator cascade in one go
/// (`Value` is `Copy`: the gather copy is a flat `memcpy`, and rows are read
/// back as borrowed `&[Value]` slices — no per-row `Vec` anywhere).
/// `gather` reuses the arena and item allocations across calls.
#[derive(Debug, Clone, Default)]
pub struct ElementBatch<'a> {
    arena: Vec<Value>,
    items: Vec<BatchItem<'a>>,
    elements: usize,
}

impl<'a> ElementBatch<'a> {
    /// Creates an empty batch.
    #[must_use]
    pub fn new() -> Self {
        ElementBatch::default()
    }

    /// Number of feed elements gathered (tuples + punctuations).
    #[must_use]
    pub fn len(&self) -> usize {
        self.elements
    }

    /// Whether the batch holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elements == 0
    }

    /// The gathered items in arrival order.
    #[must_use]
    pub fn items(&self) -> &[BatchItem<'a>] {
        &self.items
    }

    /// The flat value arena backing the tuple runs.
    #[must_use]
    pub fn arena(&self) -> &[Value] {
        &self.arena
    }

    /// Refills the batch from a contiguous element slice (clears first).
    pub fn gather(&mut self, elements: &'a [StreamElement]) {
        self.clear();
        for e in elements {
            self.push_element(e);
        }
    }

    /// Refills the batch from the elements selected by `indices`, in index
    /// order (the sharded executor routes element indices, not elements).
    pub fn gather_indexed(&mut self, elements: &'a [StreamElement], indices: &[u32]) {
        self.clear();
        for &i in indices {
            self.push_element(&elements[i as usize]);
        }
    }

    /// Drops all gathered elements, keeping the allocations.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.items.clear();
        self.elements = 0;
    }

    fn push_element(&mut self, e: &'a StreamElement) {
        match e {
            StreamElement::Tuple(t) => {
                let width = t.values.len();
                match self.items.last_mut() {
                    // Width must match too: a malformed-arity tuple folded
                    // into an existing run would corrupt the arena stride.
                    Some(BatchItem::Run {
                        stream,
                        width: run_width,
                        rows,
                        ..
                    }) if *stream == t.stream && *run_width == width => {
                        *rows += 1;
                    }
                    _ => self.items.push(BatchItem::Run {
                        stream: t.stream,
                        width,
                        start: self.arena.len(),
                        rows: 1,
                    }),
                }
                self.arena.extend_from_slice(&t.values);
            }
            StreamElement::Punctuation(p) => self.items.push(BatchItem::Punct(p)),
        }
        self.elements += 1;
    }
}

/// A finite, ordered sequence of elements from any number of streams.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Feed {
    items: Vec<StreamElement>,
}

impl Feed {
    /// Creates an empty feed.
    #[must_use]
    pub fn new() -> Self {
        Feed::default()
    }

    /// Wraps an explicit element sequence.
    #[must_use]
    pub fn from_elements(items: Vec<StreamElement>) -> Self {
        Feed { items }
    }

    /// Appends one element.
    pub fn push(&mut self, e: impl Into<StreamElement>) {
        self.items.push(e.into());
    }

    /// Interleaves several per-stream scripts round-robin, one element from
    /// each non-exhausted script per cycle. Order within a script is kept.
    #[must_use]
    pub fn round_robin(scripts: Vec<Vec<StreamElement>>) -> Self {
        let mut iters: Vec<std::vec::IntoIter<StreamElement>> =
            scripts.into_iter().map(Vec::into_iter).collect();
        let mut items = Vec::new();
        loop {
            let mut progressed = false;
            for it in &mut iters {
                if let Some(e) = it.next() {
                    items.push(e);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        Feed { items }
    }

    /// Interleaves per-stream scripts with relative `weights` (a rate-based
    /// arrival model): each step deterministically picks the script with the
    /// largest accumulated credit, so a weight-2 script emits twice as often
    /// as a weight-1 script. Order within a script is kept.
    ///
    /// # Panics
    /// Panics if `weights.len() != scripts.len()` or a weight is 0.
    #[must_use]
    pub fn weighted(scripts: Vec<Vec<StreamElement>>, weights: &[u32]) -> Self {
        assert_eq!(scripts.len(), weights.len(), "one weight per script");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        let mut iters: Vec<std::iter::Peekable<std::vec::IntoIter<StreamElement>>> = scripts
            .into_iter()
            .map(|s| s.into_iter().peekable())
            .collect();
        let mut credit: Vec<u64> = vec![0; iters.len()];
        let mut items = Vec::new();
        loop {
            // Accrue credit only for non-exhausted scripts; pick the richest.
            let mut best: Option<usize> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if it.peek().is_some() {
                    credit[i] += u64::from(weights[i]);
                    if best.is_none_or(|b| credit[i] > credit[b]) {
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            credit[i] = 0;
            items.push(iters[i].next().expect("peeked"));
        }
        Feed { items }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the feed is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The elements in order.
    #[must_use]
    pub fn elements(&self) -> &[StreamElement] {
        &self.items
    }

    /// Yields the feed as [`ElementBatch`]es of at most `size` elements, in
    /// order. Each batch is freshly gathered; executors that want to reuse
    /// one batch allocation should gather over `elements()` chunks instead.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn batches(&self, size: usize) -> impl Iterator<Item = ElementBatch<'_>> {
        assert!(size > 0, "batch size must be positive");
        self.items.chunks(size).map(|chunk| {
            let mut batch = ElementBatch::new();
            batch.gather(chunk);
            batch
        })
    }

    /// Counts elements belonging to `stream`.
    #[must_use]
    pub fn count_for(&self, stream: StreamId) -> usize {
        self.items.iter().filter(|e| e.stream() == stream).count()
    }

    /// Counts punctuations in the feed.
    #[must_use]
    pub fn punctuation_count(&self) -> usize {
        self.items.iter().filter(|e| e.is_punctuation()).count()
    }
}

impl IntoIterator for Feed {
    type Item = StreamElement;
    type IntoIter = std::vec::IntoIter<StreamElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl<'a> IntoIterator for &'a Feed {
    type Item = &'a StreamElement;
    type IntoIter = std::slice::Iter<'a, StreamElement>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl FromIterator<StreamElement> for Feed {
    fn from_iter<T: IntoIterator<Item = StreamElement>>(iter: T) -> Self {
        Feed {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use cjq_core::value::Value;

    fn t(stream: usize, v: i64) -> StreamElement {
        Tuple::of(stream, [Value::Int(v)]).into()
    }

    #[test]
    fn round_robin_interleaves() {
        let feed = Feed::round_robin(vec![
            vec![t(0, 1), t(0, 2)],
            vec![t(1, 10), t(1, 20), t(1, 30)],
        ]);
        let order: Vec<usize> = feed.elements().iter().map(|e| e.stream().0).collect();
        assert_eq!(order, vec![0, 1, 0, 1, 1]);
        assert_eq!(feed.count_for(StreamId(1)), 3);
        assert_eq!(feed.punctuation_count(), 0);
    }

    #[test]
    fn weighted_interleaving_respects_rates() {
        // Stream 1 at weight 3, stream 0 at weight 1: among any window the
        // heavy stream appears ~3x as often until it runs out.
        let feed = Feed::weighted(
            vec![
                (0..10).map(|i| t(0, i)).collect(),
                (0..30).map(|i| t(1, i)).collect(),
            ],
            &[1, 3],
        );
        assert_eq!(feed.len(), 40);
        let first_20: Vec<usize> = feed.elements()[..20].iter().map(|e| e.stream().0).collect();
        let heavy = first_20.iter().filter(|&&s| s == 1).count();
        assert!((13..=17).contains(&heavy), "heavy stream count {heavy}");
        // Relative order within each script is preserved.
        let s0: Vec<&StreamElement> = feed
            .elements()
            .iter()
            .filter(|e| e.stream() == StreamId(0))
            .collect();
        for (i, e) in s0.iter().enumerate() {
            assert_eq!(**e, t(0, i as i64));
        }
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn weighted_rejects_zero_weights() {
        let _ = Feed::weighted(vec![vec![]], &[0]);
    }

    #[test]
    fn gather_groups_runs_and_borrows_punctuations() {
        use cjq_core::punctuation::Punctuation;
        let mut feed = Feed::new();
        feed.push(Tuple::of(0, [Value::Int(1)]));
        feed.push(Tuple::of(0, [Value::Int(2)]));
        feed.push(Tuple::of(1, [Value::Int(3), Value::Int(4)]));
        feed.push(Punctuation::with_constants(StreamId(0), 1, &[]));
        feed.push(Tuple::of(0, [Value::Int(5)]));

        let mut batch = ElementBatch::new();
        batch.gather(feed.elements());
        assert_eq!(batch.len(), 5);
        let items = batch.items();
        assert_eq!(items.len(), 4, "two runs merge, punct splits the third");
        match items[0] {
            BatchItem::Run {
                stream,
                width,
                start,
                rows,
            } => {
                assert_eq!((stream, width, start, rows), (StreamId(0), 1, 0, 2));
                assert_eq!(
                    &batch.arena()[start..start + rows * width],
                    &[Value::Int(1), Value::Int(2)]
                );
            }
            BatchItem::Punct(_) => panic!("expected a run"),
        }
        assert!(matches!(
            items[1],
            BatchItem::Run {
                stream: StreamId(1),
                width: 2,
                rows: 1,
                ..
            }
        ));
        assert!(matches!(items[2], BatchItem::Punct(_)));
        assert!(matches!(items[3], BatchItem::Run { rows: 1, .. }));

        // Reuse: gathering indices keeps index order and resets state.
        batch.gather_indexed(feed.elements(), &[4, 0]);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.items().len(), 1, "both stream-0 tuples form one run");

        // Feed::batches splits on the size boundary.
        let sizes: Vec<usize> = feed.batches(2).map(|b| b.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn push_and_iterate() {
        let mut feed = Feed::new();
        assert!(feed.is_empty());
        feed.push(Tuple::of(0, [Value::Int(1)]));
        feed.push(cjq_core::punctuation::Punctuation::with_constants(
            StreamId(0),
            1,
            &[],
        ));
        assert_eq!(feed.len(), 2);
        assert_eq!(feed.punctuation_count(), 1);
        let collected: Feed = feed.clone().into_iter().collect();
        assert_eq!(collected, feed);
        assert_eq!((&feed).into_iter().count(), 2);
    }
}
