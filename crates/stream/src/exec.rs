//! Executor: compiles an execution plan into an operator tree and drives it
//! over a punctuated feed.
//!
//! The executor owns the [`PurgeEngine`] (raw mirror + punctuation stores),
//! the [`JoinOperator`] tree, and an optional [`GroupBy`] stage over the root
//! output (the paper's Figure 1 pipeline). Purge cycles run eagerly (after
//! every punctuation), lazily (batched), or never, per [`PurgeCadence`] —
//! the Plan-Parameter-II knob of §5.2.

use std::path::Path;
use std::time::Instant;

use cjq_core::fxhash::FxHashMap;

use cjq_core::error::{CoreError, CoreResult};
use cjq_core::plan::Plan;
use cjq_core::punctuation::Punctuation;
use cjq_core::query::Cjq;
use cjq_core::schema::{AttrRef, StreamId};
use cjq_core::scheme::SchemeSet;
use cjq_core::value::Value;

use crate::checkpoint::{
    CheckpointStore, Dec, Enc, Fingerprint, InputCursor, Manifest, SnapshotKind, SnapshotResult,
};
use crate::element::StreamElement;
use crate::error::{ExecError, ExecResult};
use crate::groupby::{Aggregate, GroupBy};
use crate::guard::{AdmissionFault, AdmissionGuard, AdmissionPolicy, DeadLetter};
use crate::join::JoinOperator;
use crate::metrics::{Metrics, StatePoint};
use crate::punct_store::PunctClass;
use crate::purge::{PurgeEngine, PurgeScope, PurgeStrategy};
use crate::sink::{CollectSink, CountSink, OutputBuffer, ResultSink};
use crate::source::{BatchItem, ElementBatch, Feed};
use crate::tier::{SpillStore, TierConfig, TierStats};
use crate::tuple::Tuple;

/// When purge cycles run (Plan Parameter II of §5.2, after \[6\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PurgeCadence {
    /// Never purge (the no-punctuation baseline: state grows unboundedly).
    Never,
    /// Purge after every punctuation arrival (minimal memory, more work).
    #[default]
    Eager,
    /// Purge every `batch` elements (better throughput, more memory).
    Lazy {
        /// Elements between purge cycles.
        batch: usize,
    },
    /// Self-tuning cadence (the §5.2 "adaptive query processing" direction):
    /// starts at `initial` elements per cycle and adapts to the observed
    /// purge yield — a cycle that purges most of the state means the engine
    /// waited too long (halve the batch); a cycle that purges almost nothing
    /// means cycles are wasted work (grow the batch). Clamped to [8, 4096].
    Adaptive {
        /// Initial elements between purge cycles.
        initial: usize,
    },
}

/// What the bounded-state watchdog does when live join state exceeds the
/// budget (after trying a purge cycle first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetPolicy {
    /// Fail the run with [`ExecError::StateBudgetExceeded`].
    #[default]
    HardError,
    /// Load-shed the oldest stored rows until the state fits again. Shed
    /// rows were *not* proven dead — results may be incomplete, which is the
    /// degradation trade-off; shed counts surface in `Metrics::rows_shed`.
    Shed,
}

/// A hard ceiling on live join-state rows, enforced after every element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateBudget {
    /// Maximum live rows across all operator join states.
    pub max_rows: usize,
    /// What to do on overrun.
    pub policy: BudgetPolicy,
}

impl StateBudget {
    /// A hard-error budget of `max_rows`.
    #[must_use]
    pub fn hard(max_rows: usize) -> Self {
        StateBudget {
            max_rows,
            policy: BudgetPolicy::HardError,
        }
    }

    /// A load-shedding budget of `max_rows`.
    #[must_use]
    pub fn shedding(max_rows: usize) -> Self {
        StateBudget {
            max_rows,
            policy: BudgetPolicy::Shed,
        }
    }
}

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Purge model: per-operator (plan-dependent) or query-level.
    pub scope: PurgeScope,
    /// Purge cadence.
    pub cadence: PurgeCadence,
    /// How purge passes find purgeable tuples: full state scans (the
    /// correctness oracle) or delta-driven index probes.
    pub purge_strategy: PurgeStrategy,
    /// §5.1 punctuation lifespan (sequence ticks), if any.
    pub punct_lifespan: Option<u64>,
    /// §5.1 punctuation purging (punctuations purging punctuations).
    pub purge_punctuations: bool,
    /// Sliding-window semantics: tuples older than this many elements are
    /// evicted regardless of punctuations (the window-join baseline of
    /// \[3, 7\]). `None` = pure punctuation semantics. Window eviction can
    /// drop tuples that would still join: results may be incomplete — that
    /// is the baseline's defining trade-off.
    pub window: Option<u64>,
    /// Sample state sizes every this many elements.
    pub sample_every: usize,
    /// Conservative bound on required-combination enumeration per purge step.
    pub coverage_limit: usize,
    /// Keep result tuples in memory (disable for large benches).
    pub record_outputs: bool,
    /// Elements per micro-batch on the batched data path
    /// ([`Executor::run_with_sink`] and friends). Larger batches amortize
    /// dispatch and widen probe-key deduplication windows; purge cadence,
    /// sampling, and window eviction still happen at exactly the same element
    /// positions as the per-element path (runs are capped at those
    /// boundaries), so results and metrics are batch-size independent.
    pub batch_size: usize,
    /// Runtime certificate verification (see [`crate::certify`]): assert at
    /// compile time that compiled purge recipes match the static
    /// purgeability certificates, re-check a sample of purge verdicts
    /// against the explaining oracle every cycle, and assert at finish
    /// (a punctuation-quiescent point, after driving purge cycles to a
    /// fixpoint) that no provably-dead tuple is still live. Defaults to the
    /// `verify-certificates` cargo feature.
    pub verify_certificates: bool,
    /// Admission-guard policy for malformed or invariant-breaking elements
    /// (see [`crate::guard`]). The default, [`AdmissionPolicy::Quarantine`],
    /// preserves the legacy drop-and-count behavior for violating tuples and
    /// additionally counts every refusal in `Metrics::quarantined`.
    pub admission: AdmissionPolicy,
    /// Bounded-state watchdog: a hard ceiling on live join-state rows,
    /// checked after every element (the fallible `try_*` paths are required
    /// for [`BudgetPolicy::HardError`] to surface as an error instead of a
    /// panic). `None` disables the watchdog.
    pub state_budget: Option<StateBudget>,
    /// Stall detector: flag a punctuated stream in
    /// `Metrics::stalled_streams` once this many elements pass without any
    /// admitted punctuation on it. `None` disables detection.
    pub stall_budget: Option<u64>,
    /// Cold-tier state spilling (see [`crate::tier`]): when the
    /// [`ExecConfig::state_budget`] trips and a purge cycle cannot shrink the
    /// hot state under the cap, least-recently-probed rows are demoted into
    /// on-disk columnar segments *before* the budget policy runs — the
    /// lossless step between purging and shedding. Requires a state budget
    /// to ever demote; incompatible with `window`, `punct_lifespan`, and
    /// `purge_punctuations` (those evict or forget on wall-position grounds
    /// the cold tier does not track). `None` disables tiering.
    pub tiering: Option<TierConfig>,
    /// Worst-case-optimal probing (see [`crate::wcoj`]): execute the join as
    /// one flat operator whose probe path extends a prefix of join-attribute
    /// classes (GenericJoin) instead of whole ports at a time. Requires the
    /// flat MJoin plan and a cyclic join graph; outputs, purge totals, and
    /// certificates are byte-identical to the binary path. Incompatible with
    /// `tiering` (the fault-back sweep's superset argument does not cover
    /// prefix-extension candidate enumeration).
    pub wcoj: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            scope: PurgeScope::Operator,
            cadence: PurgeCadence::Eager,
            purge_strategy: PurgeStrategy::default(),
            punct_lifespan: None,
            purge_punctuations: false,
            window: None,
            sample_every: 64,
            coverage_limit: 100_000,
            record_outputs: true,
            batch_size: 256,
            verify_certificates: cfg!(feature = "verify-certificates"),
            admission: AdmissionPolicy::default(),
            state_budget: None,
            stall_budget: None,
            tiering: None,
            wcoj: false,
        }
    }
}

impl ExecConfig {
    /// Feeds every execution knob into a structural fingerprint (see
    /// [`Executor::fingerprint`]): a snapshot only overlays onto an executor
    /// whose config matches knob for knob, since the knobs steer purge
    /// cadence, sampling, and budget decisions that the serialized state
    /// already reflects.
    pub(crate) fn fingerprint_into(&self, fp: &mut Fingerprint) {
        fp.word(match self.scope {
            PurgeScope::Operator => 0,
            PurgeScope::Query => 1,
        });
        match self.cadence {
            PurgeCadence::Never => {
                fp.word(0);
                fp.word(0);
            }
            PurgeCadence::Eager => {
                fp.word(1);
                fp.word(0);
            }
            PurgeCadence::Lazy { batch } => {
                fp.word(2);
                fp.word(batch as u64);
            }
            PurgeCadence::Adaptive { initial } => {
                fp.word(3);
                fp.word(initial as u64);
            }
        }
        fp.word(match self.purge_strategy {
            PurgeStrategy::FullScan => 0,
            PurgeStrategy::Indexed => 1,
        });
        fp.word(self.punct_lifespan.map_or(u64::MAX, |v| v));
        fp.word(u64::from(self.purge_punctuations));
        fp.word(self.window.map_or(u64::MAX, |v| v));
        fp.word(self.sample_every as u64);
        fp.word(self.coverage_limit as u64);
        fp.word(u64::from(self.record_outputs));
        fp.word(self.batch_size as u64);
        fp.word(u64::from(self.verify_certificates));
        fp.word(match self.admission {
            AdmissionPolicy::Strict => 0,
            AdmissionPolicy::Quarantine => 1,
            AdmissionPolicy::Repair => 2,
        });
        match self.state_budget {
            Some(b) => {
                fp.word(b.max_rows as u64);
                fp.word(match b.policy {
                    BudgetPolicy::HardError => 0,
                    BudgetPolicy::Shed => 1,
                });
            }
            None => fp.word(u64::MAX),
        }
        fp.word(self.stall_budget.map_or(u64::MAX, |v| v));
        match self.tiering {
            Some(t) => {
                fp.word(t.segment_rows as u64);
                fp.word(u64::from(t.low_watermark_pct));
                fp.word(u64::from(t.shard_tag));
            }
            None => fp.word(u64::MAX),
        }
        fp.word(u64::from(self.wcoj));
    }
}

/// Final per-operator state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorSnapshot {
    /// The streams the operator spans.
    pub span: Vec<StreamId>,
    /// Live tuples per input port at the end of the run.
    pub port_live: Vec<usize>,
    /// The operator's activity counters.
    pub stats: crate::join::OperatorStats,
}

/// End-of-run live-slot ids for every operator port and every mirror stream.
///
/// Slot ids are per-shard-deterministic: two executors fed the same element
/// subsequence assign identical slot ids, which is what lets the sharded
/// merge union replicated (broadcast) state by slot id.
#[derive(Debug, Clone, Default)]
pub struct LiveStateSnapshot {
    /// Per operator (bottom-up, root last), per port: live slot ids.
    pub op_port_slots: Vec<Vec<Vec<usize>>>,
    /// Per stream (indexed by `StreamId.0`): live mirror slot ids.
    pub mirror_slots: Vec<Vec<usize>>,
}

/// Result of running a feed to completion.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// Result tuples (root-operator outputs), if recorded.
    pub outputs: Vec<Vec<Value>>,
    /// Aggregate rows emitted by the group-by stage (punctuation-closed).
    pub aggregates: Vec<Vec<Value>>,
    /// Execution metrics.
    pub metrics: Metrics,
    /// Per-operator snapshots, bottom-up (root last).
    pub operators: Vec<OperatorSnapshot>,
}

/// A compiled, runnable execution plan.
#[derive(Debug)]
pub struct Executor {
    query: Cjq,
    engine: PurgeEngine,
    /// Operators in bottom-up order (children before parents; root last).
    ops: Vec<JoinOperator>,
    /// Parent link per operator: `(parent op index, parent port)`.
    parent: Vec<Option<(usize, usize)>>,
    /// Leaf routing: stream → (op index, port).
    leaf_route: FxHashMap<StreamId, (usize, usize)>,
    groupby: Option<GroupBy>,
    /// Punctuations awaiting delivery to the group-by stage: a punctuation
    /// may only close groups once no *stored* tuple of its stream can still
    /// produce matching outputs (the punctuation-propagation condition of
    /// [12]/[6]); until then it is pending.
    pending_group_puncts: Vec<Punctuation>,
    cfg: ExecConfig,
    clock: u64,
    since_purge: usize,
    /// Current batch size under [`PurgeCadence::Adaptive`].
    adaptive_batch: usize,
    outputs: Vec<Vec<Value>>,
    aggregates: Vec<Vec<Value>>,
    metrics: Metrics,
    /// Reusable columnar buffers ping-ponged through the operator cascade by
    /// the batched path (current level's output / next level's output).
    batch_bufs: (OutputBuffer, OutputBuffer),
    /// Reusable per-run scratch: indices of tuples that survived the
    /// punctuation-violation check.
    scratch_survivors: Vec<u32>,
    /// Schema-shape admission validator (see [`crate::guard`]).
    guard: AdmissionGuard,
    /// Optional dead-letter routing for quarantined elements.
    dead_letter: DeadLetter,
    /// Per stream: clock of the last admitted punctuation (stall detector).
    last_punct: Vec<u64>,
    /// Per stream: whether the stall detector currently flags it.
    stall_flagged: Vec<bool>,
    /// Per stream: whether any punctuation scheme is registered (streams
    /// without schemes are never expected to punctuate — not stall-checked).
    has_schemes: Vec<bool>,
    /// Reusable watchdog scratch: live-row arrival times.
    shed_scratch: Vec<u64>,
    /// Cold-tier spill directory owner, present iff `cfg.tiering` is set.
    spill: Option<SpillStore>,
    /// Static per-port bound certificates, flattened op-major in bottom-up
    /// operator order (`None` = port unchecked). When set, every element
    /// checks live rows per port against the certificate and a violation is
    /// a hard [`ExecError::PortBoundExceeded`]. Lives outside `ExecConfig`
    /// (which stays `Copy`).
    port_bounds: Option<Vec<Option<u64>>>,
}

impl Executor {
    /// Compiles `plan` (validated against `query`) into an operator tree.
    ///
    /// The plan may be unsafe — unpurgeable ports simply get no recipe and
    /// grow, which is exactly what the state-growth experiments measure.
    pub fn compile(
        query: &Cjq,
        schemes: &SchemeSet,
        plan: &Plan,
        cfg: ExecConfig,
    ) -> CoreResult<Self> {
        Executor::compile_weighted(query, schemes, plan, cfg, None)
    }

    /// Like [`Executor::compile`], with optional per-scheme punctuation-lag
    /// weights (aligned with `schemes.schemes()`): purge recipes then prefer
    /// low-lag schemes (§5.2 Plan Parameter I).
    pub fn compile_weighted(
        query: &Cjq,
        schemes: &SchemeSet,
        plan: &Plan,
        cfg: ExecConfig,
        weights: Option<&[f64]>,
    ) -> CoreResult<Self> {
        plan.validate(query)?;
        if matches!(plan, Plan::Leaf(_)) {
            return Err(CoreError::InvalidPlan(
                "single-stream plans have no join to execute".into(),
            ));
        }
        schemes.validate(query.catalog())?;
        if cfg.tiering.is_some()
            && (cfg.window.is_some() || cfg.punct_lifespan.is_some() || cfg.purge_punctuations)
        {
            return Err(CoreError::InvalidPlan(
                "tiering is incompatible with window eviction, punctuation \
                 lifespans, and punctuation purging: those discard state or \
                 coverage on grounds the cold tier does not track"
                    .into(),
            ));
        }
        if cfg.wcoj && cfg.tiering.is_some() {
            return Err(CoreError::InvalidPlan(
                "worst-case-optimal probing is incompatible with tiering: \
                 cold rows could hide extension candidates from the \
                 prefix-extension enumeration"
                    .into(),
            ));
        }
        let engine = PurgeEngine::new_weighted(
            query,
            schemes,
            cfg.punct_lifespan,
            cfg.coverage_limit,
            weights.map(<[f64]>::to_vec),
        );
        let mut ops = Vec::new();
        let mut parent = Vec::new();
        let mut leaf_route = FxHashMap::default();
        build(
            query,
            schemes,
            plan,
            cfg.scope,
            &engine,
            &mut ops,
            &mut parent,
            &mut leaf_route,
        );
        if cfg.verify_certificates {
            if let Some(mismatch) =
                crate::certify::static_certificates(query, schemes, cfg.scope, &ops, &engine)
            {
                panic!("static certificate violation: {mismatch}");
            }
        }
        if cfg.wcoj {
            if ops.len() != 1 {
                return Err(CoreError::InvalidPlan(
                    "worst-case-optimal probing requires the flat MJoin plan \
                     (one operator joining every stream directly)"
                        .into(),
                ));
            }
            ops[0].enable_wcoj(query)?;
        }
        if cfg.tiering.is_some() {
            for op in &mut ops {
                op.enable_tiering();
            }
        }
        let n_streams = query.n_streams();
        let has_schemes = query
            .stream_ids()
            .map(|s| !engine.punct_store(s).schemes().is_empty())
            .collect();
        Ok(Executor {
            spill: cfg.tiering.map(|t| SpillStore::new(t.shard_tag)),
            guard: AdmissionGuard::new(query, cfg.admission),
            dead_letter: DeadLetter::none(),
            last_punct: vec![0; n_streams],
            stall_flagged: vec![false; n_streams],
            has_schemes,
            shed_scratch: Vec::new(),
            query: query.clone(),
            engine,
            ops,
            parent,
            leaf_route,
            groupby: None,
            pending_group_puncts: Vec::new(),
            adaptive_batch: match cfg.cadence {
                PurgeCadence::Adaptive { initial } => initial.clamp(8, 4096),
                _ => 0,
            },
            cfg,
            clock: 0,
            since_purge: 0,
            outputs: Vec::new(),
            aggregates: Vec::new(),
            metrics: Metrics::default(),
            batch_bufs: (OutputBuffer::default(), OutputBuffer::default()),
            scratch_survivors: Vec::new(),
            port_bounds: None,
        })
    }

    /// Arms per-port bound certificates: `bounds[flat_port]` (op-major,
    /// bottom-up operator order — the order `cjq_core::bounds::
    /// plan_operator_ports` reports) caps the port's live rows; `None`
    /// leaves a port unchecked. Checked on every element, so the batched
    /// path degrades to per-element stepping like the other state monitors.
    ///
    /// # Panics
    /// Panics if `bounds.len()` differs from the number of flat ports.
    pub fn set_port_bounds(&mut self, bounds: Vec<Option<u64>>) {
        let n_ports: usize = self.ops.iter().map(|op| op.port_spans().len()).sum();
        assert_eq!(
            bounds.len(),
            n_ports,
            "one bound slot per flattened operator port"
        );
        self.port_bounds = if bounds.iter().all(Option::is_none) {
            None
        } else {
            Some(bounds)
        };
    }

    /// Attaches a group-by/aggregation stage over the root operator's output.
    ///
    /// The stage is join-equivalence aware ([`GroupBy::for_query`]): a
    /// punctuation on any attribute join-equivalent to a grouping attribute
    /// can close groups. Delivery is gated on the propagation condition (no
    /// live stored tuple of the punctuated stream still matches), so closed
    /// groups are guaranteed complete.
    ///
    /// # Panics
    /// Panics if a grouping/aggregate attribute is not in the root layout.
    #[must_use]
    pub fn with_groupby(mut self, group_by: &[AttrRef], agg: Aggregate) -> Self {
        let layout = self
            .ops
            .last()
            .expect("at least one operator")
            .out_layout()
            .clone();
        self.groupby = Some(GroupBy::for_query(&self.query, layout, group_by, agg));
        self
    }

    /// Routes quarantined elements to `sink` (see [`crate::guard`]): each is
    /// delivered as a row `[reason_code, stream_id, values...]`. Without a
    /// dead-letter sink quarantined elements are only counted.
    #[must_use]
    pub fn with_dead_letter(mut self, sink: Box<dyn ResultSink + Send>) -> Self {
        self.dead_letter = DeadLetter::to(sink);
        self
    }

    /// The query this executor runs.
    #[must_use]
    pub fn query(&self) -> &Cjq {
        &self.query
    }

    /// Total live join-state tuples across all operators.
    #[must_use]
    pub fn join_state_live(&self) -> usize {
        self.ops.iter().map(JoinOperator::live).sum()
    }

    /// The purge engine (mirror + punctuation stores).
    #[must_use]
    pub fn engine(&self) -> &PurgeEngine {
        &self.engine
    }

    /// The operators, bottom-up (root last).
    #[must_use]
    pub fn operators(&self) -> &[JoinOperator] {
        &self.ops
    }

    /// Pushes one element through the pipeline.
    ///
    /// # Panics
    /// Panics where [`Executor::try_push`] would return an error.
    pub fn push(&mut self, element: &StreamElement) {
        self.try_push(element).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Executor::push`]: admission refusals under
    /// [`AdmissionPolicy::Strict`], unroutable streams, and watchdog overruns
    /// under [`BudgetPolicy::HardError`] come back as [`ExecError`]s. After
    /// an error the executor is poisoned (the element was partially applied)
    /// and must be discarded.
    pub fn try_push(&mut self, element: &StreamElement) -> ExecResult<()> {
        let start = Instant::now();
        self.clock += 1;
        self.since_purge += 1;
        match element {
            StreamElement::Tuple(t) => self.try_push_tuple(t)?,
            StreamElement::Punctuation(p) => self.try_push_punctuation(p)?,
        }
        self.post_element()?;
        self.metrics.elapsed_ns += start.elapsed().as_nanos();
        Ok(())
    }

    /// Per-element bookkeeping shared by the per-element and batched paths:
    /// cadence-driven purge cycles, window eviction, watchdog enforcement,
    /// stall detection, state sampling. The batched path calls this once per
    /// capped sub-run — [`Executor::run_cap`] guarantees the clock positions
    /// where anything fires are identical to the per-element path.
    fn post_element(&mut self) -> ExecResult<()> {
        match self.cfg.cadence {
            PurgeCadence::Lazy { batch } if self.since_purge >= batch => self.purge_cycle(),
            PurgeCadence::Adaptive { .. } if self.since_purge >= self.adaptive_batch => {
                self.purge_cycle();
            }
            _ => {}
        }
        if let Some(window) = self.cfg.window {
            let cutoff = self.clock.saturating_sub(window);
            let mut evicted = 0;
            for op in &mut self.ops {
                evicted += op.evict_window(cutoff);
            }
            self.engine.evict_window(cutoff);
            self.metrics.purged += evicted as u64;
        }
        // Budget before sampling, so sampled peaks respect the ceiling.
        self.enforce_budget()?;
        self.check_port_bounds()?;
        self.detect_stalls();
        if self.clock.is_multiple_of(self.cfg.sample_every as u64) {
            self.sample();
        }
        Ok(())
    }

    /// Bound-certificate check: with [`Executor::set_port_bounds`] armed,
    /// walk every operator port, record its live-row peak, and fail hard if
    /// a certified port exceeds its static bound. Runs after purge/budget
    /// enforcement so eager purges get credit before the comparison.
    fn check_port_bounds(&mut self) -> ExecResult<()> {
        let Some(bounds) = &self.port_bounds else {
            return Ok(());
        };
        let mut flat = 0usize;
        for (oi, op) in self.ops.iter().enumerate() {
            for (pi, live) in op.port_live().into_iter().enumerate() {
                self.metrics.track_port_peak(flat, live);
                if let Some(bound) = bounds[flat] {
                    if live as u64 > bound {
                        return Err(ExecError::PortBoundExceeded {
                            op: oi,
                            port: pi,
                            live,
                            bound,
                            clock: self.clock,
                        });
                    }
                }
                flat += 1;
            }
        }
        Ok(())
    }

    /// Bounded-state watchdog ladder: when live join state exceeds the
    /// budget, try to purge (proving rows dead is always preferable), then —
    /// with tiering enabled — demote cold rows to disk (lossless), and only
    /// then apply the budget policy to whatever still doesn't fit.
    fn enforce_budget(&mut self) -> ExecResult<()> {
        let Some(budget) = self.cfg.state_budget else {
            return Ok(());
        };
        if self.join_state_live() <= budget.max_rows {
            return Ok(());
        }
        self.purge_cycle();
        let mut live = self.join_state_live();
        if live <= budget.max_rows {
            return Ok(());
        }
        if let Some(tier_cfg) = self.cfg.tiering {
            // The lossless step between purging and shedding: demote the
            // least-recently-probed rows into cold segments, down to the low
            // watermark so steady-state inserts don't re-trip the budget
            // every element. Probes fault matches back on demand.
            let target = budget.max_rows * usize::from(tier_cfg.low_watermark_pct.min(100)) / 100;
            let excess = live.saturating_sub(target);
            if excess > 0 {
                let mut touched = std::mem::take(&mut self.shed_scratch);
                touched.clear();
                for op in &self.ops {
                    op.live_touched(&mut touched);
                }
                let k = excess.min(touched.len()).saturating_sub(1);
                let (_, nth, _) = touched.select_nth_unstable(k);
                let cutoff = *nth + 1;
                self.shed_scratch = touched;
                let spill = self
                    .spill
                    .as_mut()
                    .expect("spill store exists iff tiering is configured");
                for (oi, op) in self.ops.iter_mut().enumerate() {
                    op.demote_colder_than(cutoff, spill, oi, tier_cfg.segment_rows);
                }
            }
            live = self.join_state_live();
            if live <= budget.max_rows {
                return Ok(());
            }
        }
        match budget.policy {
            BudgetPolicy::HardError => Err(ExecError::StateBudgetExceeded {
                live,
                budget: budget.max_rows,
                clock: self.clock,
            }),
            BudgetPolicy::Shed => {
                // Shed the oldest rows: pick the arrival-time cutoff whose
                // eviction removes at least the excess (ties may shed more —
                // the budget is a ceiling, not a target). Each shed row is
                // attributed to its operator port and routed to the
                // dead-letter sink: shed rows were *not* proven dead, so the
                // potentially lost results stay auditable.
                let excess = live - budget.max_rows;
                let mut arrivals = std::mem::take(&mut self.shed_scratch);
                arrivals.clear();
                for op in &self.ops {
                    op.live_arrivals(&mut arrivals);
                }
                let k = excess.min(arrivals.len()).saturating_sub(1);
                let (_, nth, _) = arrivals.select_nth_unstable(k);
                let cutoff = *nth + 1;
                let mut shed = 0;
                let mut flat_port = 0;
                let clock = self.clock;
                for op in &mut self.ops {
                    let port_streams: Vec<StreamId> =
                        op.port_spans().iter().map(|span| span[0]).collect();
                    let dead_letter = &mut self.dead_letter;
                    let by_port = op.shed_older_than_with(cutoff, &mut |port, row| {
                        dead_letter.emit_shed(port_streams[port], row, clock);
                    });
                    for (port, &n) in by_port.iter().enumerate() {
                        shed += n;
                        if n > 0 {
                            self.metrics.count_shed_rows(flat_port + port, n as u64);
                        }
                    }
                    flat_port += by_port.len();
                }
                self.metrics.rows_shed += shed as u64;
                self.metrics.shed_events += 1;
                self.shed_scratch = arrivals;
                Ok(())
            }
        }
    }

    /// Stall detector: flags punctuated streams whose punctuations stopped
    /// arriving for more than the configured element budget. A later
    /// punctuation clears the flag (so `Metrics::stalled_streams` reflects
    /// streams still stalled at that point).
    fn detect_stalls(&mut self) {
        let Some(budget) = self.cfg.stall_budget else {
            return;
        };
        for s in 0..self.last_punct.len() {
            if self.has_schemes[s]
                && !self.stall_flagged[s]
                && self.clock.saturating_sub(self.last_punct[s]) > budget
            {
                self.stall_flagged[s] = true;
                if let Err(pos) = self.metrics.stalled_streams.binary_search(&s) {
                    self.metrics.stalled_streams.insert(pos, s);
                }
            }
        }
    }

    /// Records punctuation progress on `stream` for the stall detector.
    fn note_punct_progress(&mut self, stream: StreamId) {
        if let Some(at) = self.last_punct.get_mut(stream.0) {
            *at = self.clock;
        }
        if self.stall_flagged.get(stream.0) == Some(&true) {
            self.stall_flagged[stream.0] = false;
            self.metrics.stalled_streams.retain(|&s| s != stream.0);
        }
    }

    /// How many more tuples may be processed as one uninterrupted run before
    /// some per-element event (purge cycle, sample, window eviction, budget
    /// or stall check) is due. Always at least 1.
    fn run_cap(&self) -> usize {
        if self.cfg.window.is_some()
            || self.cfg.state_budget.is_some()
            || self.cfg.stall_budget.is_some()
            || self.port_bounds.is_some()
        {
            // Window eviction, watchdogs, and bound certificates are
            // per-element: batching must not let state coast past a check.
            return 1;
        }
        cadence_run_cap(
            self.cfg.cadence,
            self.adaptive_batch,
            self.since_purge,
            self.clock,
            self.cfg.sample_every,
        )
    }

    /// Pushes a gathered micro-batch through the pipeline, draining root
    /// results into `sink`.
    ///
    /// Equivalent to [`Executor::push`]-ing the batch's elements one at a
    /// time: runs of consecutive same-stream tuples flow through the operator
    /// cascade as columnar buffers (capped at purge/sample boundaries by
    /// `Executor::run_cap`), punctuations are processed individually in
    /// order.
    pub fn push_batch(&mut self, batch: &ElementBatch<'_>, sink: &mut dyn ResultSink) {
        self.try_push_batch(batch, sink)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Executor::push_batch`] (see [`Executor::try_push`] for the
    /// error contract).
    pub fn try_push_batch(
        &mut self,
        batch: &ElementBatch<'_>,
        sink: &mut dyn ResultSink,
    ) -> ExecResult<()> {
        let start = Instant::now();
        for item in batch.items() {
            match *item {
                BatchItem::Punct(p) => {
                    self.clock += 1;
                    self.since_purge += 1;
                    self.try_push_punctuation(p)?;
                    self.post_element()?;
                }
                BatchItem::Run {
                    stream,
                    width,
                    start: flat_start,
                    rows,
                } => {
                    let mut off = 0;
                    while off < rows {
                        let take = (rows - off).min(self.run_cap());
                        self.try_push_run(
                            stream,
                            width,
                            &batch.arena()[flat_start + off * width..],
                            take,
                            sink,
                        )?;
                        self.post_element()?;
                        off += take;
                    }
                }
            }
        }
        self.metrics.batches_processed += 1;
        self.metrics.elapsed_ns += start.elapsed().as_nanos();
        Ok(())
    }

    /// Processes `take` same-stream rows (stride-packed at the front of
    /// `arena`) as one uninterrupted run: per-row punctuation-violation
    /// checks and mirror inserts, then one batched cascade through the
    /// operator tree, then root delivery to `sink` and the group-by stage.
    fn try_push_run(
        &mut self,
        stream: StreamId,
        width: usize,
        arena: &[Value],
        take: usize,
        sink: &mut dyn ResultSink,
    ) -> ExecResult<()> {
        let base = self.clock;
        self.clock += take as u64;
        self.since_purge += take;
        // Admission shape check, once per run (the batch gatherer only
        // coalesces width-homogeneous tuples into one run).
        if let Some(fault) = self.guard.check_tuple_shape(stream, width) {
            if self.guard.policy() == AdmissionPolicy::Strict {
                return Err(ExecError::Admission {
                    clock: base + 1,
                    fault,
                });
            }
            for i in 0..take {
                self.metrics.count_quarantine_row(fault.code(), stream.0);
                self.dead_letter.emit_tuple(
                    &fault,
                    stream,
                    &arena[i * width..(i + 1) * width],
                    base + i as u64 + 1,
                );
            }
            return Ok(());
        }
        // Observe phase. Punctuation stores only change on punctuation
        // arrival — impossible mid-run — so per-row checks against the
        // frozen stores match the per-element path exactly.
        let mut survivors = std::mem::take(&mut self.scratch_survivors);
        survivors.clear();
        for i in 0..take {
            let row = &arena[i * width..(i + 1) * width];
            if self.engine.observe_row_at(stream, row, base + i as u64 + 1) {
                self.metrics.tuples_in += 1;
                survivors.push(i as u32);
            } else {
                self.metrics.count_violation(stream.0);
                let fault = AdmissionFault::PunctuationViolation { stream };
                if self.guard.policy() == AdmissionPolicy::Strict {
                    self.scratch_survivors = survivors;
                    return Err(ExecError::Admission {
                        clock: base + i as u64 + 1,
                        fault,
                    });
                }
                self.metrics.count_quarantine_row(fault.code(), stream.0);
                self.dead_letter
                    .emit_tuple(&fault, stream, row, base + i as u64 + 1);
            }
        }
        if !survivors.is_empty() {
            let Some(&(op0, port0)) = self.leaf_route.get(&stream) else {
                self.scratch_survivors = survivors;
                return Err(ExecError::UnroutableStream(stream));
            };
            let (mut cur, mut nxt) = std::mem::take(&mut self.batch_bufs);
            cur.reset(self.ops[op0].out_layout().width());
            let saved = self.ops[op0].process_batch(
                port0,
                survivors.iter().map(|&i| {
                    let i = i as usize;
                    (&arena[i * width..(i + 1) * width], base + i as u64 + 1)
                }),
                &mut cur,
            );
            self.metrics.probe_keys_deduped += saved;
            // Walk the cascade: every composite row a level emits enters the
            // same parent port, so each level is itself one same-port run.
            let mut cur_op = op0;
            while let Some((pop, pport)) = self.parent[cur_op] {
                if cur.is_empty() {
                    break;
                }
                nxt.reset(self.ops[pop].out_layout().width());
                self.metrics.intermediate_rows += cur.len() as u64;
                let saved = self.ops[pop].process_batch(pport, cur.iter_with_now(), &mut nxt);
                self.metrics.probe_keys_deduped += saved;
                std::mem::swap(&mut cur, &mut nxt);
                cur_op = pop;
            }
            if !cur.is_empty() {
                self.metrics.outputs += cur.len() as u64;
                if let Some(g) = &mut self.groupby {
                    for row in cur.rows() {
                        g.process_tuple(row);
                    }
                }
                sink.accept(&cur);
            }
            self.batch_bufs = (cur, nxt);
        }
        self.scratch_survivors = survivors;
        Ok(())
    }

    /// Refuses one tuple per the admission policy: `Strict` errors,
    /// `Quarantine`/`Repair` count it and route it to the dead letter
    /// (violating tuples have no sound repair).
    fn refuse_tuple(
        &mut self,
        fault: AdmissionFault,
        stream: StreamId,
        row: &[Value],
    ) -> ExecResult<()> {
        if self.guard.policy() == AdmissionPolicy::Strict {
            return Err(ExecError::Admission {
                clock: self.clock,
                fault,
            });
        }
        self.metrics.count_quarantine_row(fault.code(), stream.0);
        self.dead_letter.emit_tuple(&fault, stream, row, self.clock);
        Ok(())
    }

    fn try_push_tuple(&mut self, t: &Tuple) -> ExecResult<()> {
        if let Some(fault) = self.guard.check_tuple_shape(t.stream, t.values.len()) {
            return self.refuse_tuple(fault, t.stream, &t.values);
        }
        if !self.engine.observe_tuple_at(t, self.clock) {
            self.metrics.count_violation(t.stream.0);
            let fault = AdmissionFault::PunctuationViolation { stream: t.stream };
            return self.refuse_tuple(fault, t.stream, &t.values);
        }
        self.metrics.tuples_in += 1;
        let Some(&(op, port)) = self.leaf_route.get(&t.stream) else {
            return Err(ExecError::UnroutableStream(t.stream));
        };
        let mut frontier = vec![(op, port, t.values.clone())];
        while let Some((op, port, values)) = frontier.pop() {
            let outs = self.ops[op].process_tuple_at(port, values, self.clock);
            match self.parent[op] {
                Some((pop, pport)) => {
                    self.metrics.intermediate_rows += outs.len() as u64;
                    for o in outs {
                        frontier.push((pop, pport, o));
                    }
                }
                None => {
                    for o in outs {
                        self.metrics.outputs += 1;
                        if let Some(g) = &mut self.groupby {
                            g.process_tuple(&o);
                        }
                        if self.cfg.record_outputs {
                            self.outputs.push(o);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Refuses one punctuation per the admission policy.
    fn refuse_punct(&mut self, fault: AdmissionFault, p: &Punctuation) -> ExecResult<()> {
        if self.guard.policy() == AdmissionPolicy::Strict {
            return Err(ExecError::Admission {
                clock: self.clock,
                fault,
            });
        }
        self.metrics
            .count_quarantine_punct(fault.code(), p.stream.0);
        self.dead_letter.emit_punct(&fault, p, self.clock);
        Ok(())
    }

    fn try_push_punctuation(&mut self, p: &Punctuation) -> ExecResult<()> {
        self.metrics.puncts_in += 1;
        if let Some(fault) = self.guard.check_punct_shape(p) {
            return self.refuse_punct(fault, p);
        }
        // Scheme-invariant admission: classify against the store's current
        // coverage before inserting.
        match self.engine.punct_store(p.stream).classify(p) {
            PunctClass::Regressive => {
                if self.guard.policy() != AdmissionPolicy::Repair {
                    let fault = AdmissionFault::RegressiveBound { stream: p.stream };
                    return self.refuse_punct(fault, p);
                }
                // Repair = clamp: admitting it only refreshes the threshold's
                // lifespan clock (the store never regresses) — coverage, and
                // hence every purge decision, is unchanged.
                self.metrics.repaired += 1;
            }
            PunctClass::Duplicate if self.guard.policy() == AdmissionPolicy::Repair => {
                // Repair = dedup: dropping an exact duplicate changes no
                // coverage; it only skips a lifespan refresh, which can delay
                // purges but never cause a wrong one.
                self.metrics.repaired += 1;
                self.note_punct_progress(p.stream);
                return Ok(());
            }
            _ => {}
        }
        self.note_punct_progress(p.stream);
        self.engine.observe_punctuation(p, self.clock);
        if self.groupby.is_some() {
            self.pending_group_puncts.push(p.clone());
        }
        if self.cfg.cadence == PurgeCadence::Eager {
            self.purge_cycle(); // retries pending deliveries at the end
        } else {
            self.deliver_group_punctuations();
        }
        Ok(())
    }

    /// Delivers pending punctuations to the group-by stage once safe: a
    /// punctuation on stream `S` closes groups only when no live stored `S`
    /// tuple matches it — otherwise that tuple could still join future data
    /// and add members to an already-emitted group.
    fn deliver_group_punctuations(&mut self) {
        let Some(g) = &mut self.groupby else { return };
        let engine = &self.engine;
        let mut still_pending = Vec::new();
        let mut buf = OutputBuffer::new(g.out_width());
        for p in self.pending_group_puncts.drain(..) {
            let state = engine.mirror_state(p.stream);
            // Probe a mirror hash index when the punctuation pins a constant
            // on an indexed column — O(matching) instead of O(live).
            let indexed_probe = p.constant_attrs().find(|(attr, _)| state.has_index(attr.0));
            let blocked = match indexed_probe {
                Some((attr, value)) => state
                    .probe(attr.0, value)
                    .iter()
                    .filter_map(|&slot| state.get(slot))
                    .any(|row| p.matches(row)),
                None => state.iter_live().any(|(_, row)| p.matches(row)),
            };
            if blocked {
                still_pending.push(p);
            } else {
                buf.clear();
                let closed = g.process_punctuation_into(&p, &mut buf);
                self.metrics.aggregates_out += closed as u64;
                self.aggregates.extend(buf.rows().map(<[Value]>::to_vec));
            }
        }
        self.pending_group_puncts = still_pending;
    }

    /// Runs one purge cycle: lifespan expiry, operator purge passes, mirror
    /// purge, and optional §5.1 punctuation purging.
    pub fn purge_cycle(&mut self) {
        self.since_purge = 0;
        self.metrics.purge_cycles += 1;
        if self.cfg.punct_lifespan.is_some() {
            self.engine.expire_punctuations(self.clock);
        }
        let live_before = self.join_state_live();
        let strategy = self.cfg.purge_strategy;
        // Retractions logged before this cycle are fully consumed by its end;
        // ones logged *during* it feed operator trackers only next cycle.
        let retire_marks = self.engine.retire_marks();
        let mut work = crate::purge::PurgeWork::default();
        for op in &mut self.ops {
            work.add(op.purge_pass(&self.engine, strategy));
        }
        self.metrics.purged += work.purged;
        let purged = work.purged as usize;
        if matches!(self.cfg.cadence, PurgeCadence::Adaptive { .. }) && live_before > 0 {
            // Yield-driven AIMD-style adjustment.
            if purged * 2 >= live_before {
                self.adaptive_batch = (self.adaptive_batch / 2).max(8);
            } else if purged * 10 <= live_before {
                self.adaptive_batch = (self.adaptive_batch * 2).min(4096);
            }
        }
        work.add(self.engine.purge_mirror_with(strategy));
        self.metrics.purge_candidates_examined += work.examined;
        if self.cfg.purge_punctuations {
            self.engine.purge_punctuations(&self.query);
        }
        // All trackers (operator ports and mirrors) have consumed the cycle's
        // punctuation deltas; drop them so the log stays delta-sized.
        self.engine.trim_punct_deltas();
        self.engine.trim_retired(&retire_marks);
        self.deliver_group_punctuations();
        if self.cfg.verify_certificates {
            // Per-cycle certificate check: the fast allocation-free verdict
            // must agree with the explaining oracle on a sample of the rows
            // that survived this cycle. (Completeness — "nothing provably
            // dead is still live" — is only asserted at finish: a mirror
            // purge within this cycle feeds operator trackers next cycle.)
            let mut checked = 0u64;
            for op in &self.ops {
                checked += op.verify_against_oracle(&self.engine, crate::certify::ORACLE_SAMPLE);
            }
            checked += self
                .engine
                .verify_mirror_against_oracle(crate::certify::ORACLE_SAMPLE);
            self.metrics.certificate_checks += checked;
            // Cold-tier half of the invariant: a purge cycle must also have
            // dropped every segment whose summaries a stored recipe covers —
            // a covered segment surviving the cycle would be provably-dead
            // rows outliving their certificate on disk.
            for op in &self.ops {
                assert!(
                    !op.any_certified_cold_segment(&self.engine),
                    "certificate violation: a punctuation-covered cold \
                     segment survived a purge cycle"
                );
            }
        }
    }

    /// Rows currently resident in the cold (spilled) tier across all
    /// operators (0 unless [`ExecConfig::tiering`] is set).
    #[must_use]
    pub fn cold_rows(&self) -> usize {
        self.ops.iter().map(JoinOperator::cold_rows).sum()
    }

    fn sample(&mut self) {
        let p = StatePoint {
            at: self.clock,
            join_state: self.join_state_live(),
            mirror: self.engine.mirror_live(),
            punct_entries: self.engine.punct_entries(),
            groups: self.groupby.as_ref().map_or(0, GroupBy::open_groups),
            cold: self.cold_rows(),
        };
        self.metrics.sample(p);
        let mut flat = 0usize;
        for op in &self.ops {
            for live in op.port_live() {
                self.metrics.track_port_peak(flat, live);
                flat += 1;
            }
        }
    }

    /// Runs a whole feed and finishes (final purge cycle + sample).
    ///
    /// # Panics
    /// Panics where [`Executor::try_run`] would return an error.
    pub fn run(self, feed: &Feed) -> RunResult {
        self.try_run(feed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Executor::run`] (see [`Executor::try_push`] for the error
    /// contract).
    pub fn try_run(mut self, feed: &Feed) -> ExecResult<RunResult> {
        for e in feed {
            self.try_push(e)?;
        }
        Ok(self.finish())
    }

    /// Runs a whole feed through the batched data path, streaming root
    /// results into `sink` (`RunResult::outputs` stays empty — the sink owns
    /// the results). One [`ElementBatch`] of [`ExecConfig::batch_size`]
    /// elements is reused across the run, so the steady state allocates
    /// nothing per element.
    pub fn run_with_sink(self, feed: &Feed, sink: &mut dyn ResultSink) -> RunResult {
        self.run_with_sink_detailed(feed, sink).0
    }

    /// Fallible [`Executor::run_with_sink`].
    pub fn try_run_with_sink(
        self,
        feed: &Feed,
        sink: &mut dyn ResultSink,
    ) -> ExecResult<RunResult> {
        Ok(self.try_run_with_sink_detailed(feed, sink)?.0)
    }

    /// Like [`Executor::run_with_sink`], additionally returning the live-slot
    /// snapshot (see [`Executor::finish_detailed`]).
    pub fn run_with_sink_detailed(
        self,
        feed: &Feed,
        sink: &mut dyn ResultSink,
    ) -> (RunResult, LiveStateSnapshot) {
        self.try_run_with_sink_detailed(feed, sink)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Executor::run_with_sink_detailed`] (see
    /// [`Executor::try_push`] for the error contract).
    pub fn try_run_with_sink_detailed(
        mut self,
        feed: &Feed,
        sink: &mut dyn ResultSink,
    ) -> ExecResult<(RunResult, LiveStateSnapshot)> {
        let size = self.cfg.batch_size.max(1);
        let mut batch = ElementBatch::new();
        for chunk in feed.elements().chunks(size) {
            batch.gather(chunk);
            self.try_push_batch(&batch, sink)?;
        }
        sink.finish();
        Ok(self.finish_detailed())
    }

    /// Runs a whole feed through the batched data path with the default
    /// sinks: results are collected into `RunResult::outputs` when
    /// [`ExecConfig::record_outputs`] is set, and merely counted otherwise —
    /// a drop-in, faster replacement for [`Executor::run`].
    pub fn run_batched(self, feed: &Feed) -> RunResult {
        self.try_run_batched(feed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Executor::run_batched`].
    pub fn try_run_batched(self, feed: &Feed) -> ExecResult<RunResult> {
        if self.cfg.record_outputs {
            let mut sink = CollectSink::new();
            let (mut result, _) = self.try_run_with_sink_detailed(feed, &mut sink)?;
            result.outputs = sink.rows;
            Ok(result)
        } else {
            let mut sink = CountSink::new();
            self.try_run_with_sink(feed, &mut sink)
        }
    }

    /// Final purge cycle + sample, returning the accumulated results.
    pub fn finish(self) -> RunResult {
        self.finish_detailed().0
    }

    /// Like [`Executor::finish`], additionally returning the live-slot
    /// snapshot of every port and mirror. The sharded executor merges these
    /// per-shard snapshots into one logical state count: partitioned state is
    /// disjoint across shards (sum), broadcast state is replicated (union).
    pub fn finish_detailed(mut self) -> (RunResult, LiveStateSnapshot) {
        self.dead_letter.finish();
        if self.cfg.tiering.is_some() {
            // Rehydrate every cold row before the final purge cycle: the
            // quiescent-point purge totals and the live snapshot then match
            // a never-tiered run exactly (the tier-equivalence guarantee).
            let clock = self.clock;
            for op in &mut self.ops {
                op.rehydrate_all(clock);
            }
        }
        self.purge_cycle();
        if self.cfg.verify_certificates {
            // Completeness at the quiescent point: no live row may be
            // provably dead. A dead row right after one cycle is not yet a
            // violation — a mirror purge in cycle k shrinks chained
            // requirements that operator purge passes only consume in cycle
            // k+1 — so run further cycles while they still purge; a cycle
            // that purges nothing yet leaves a dead row behind is genuine.
            loop {
                let dead_op = self.ops.iter().enumerate().find_map(|(oi, op)| {
                    op.find_purgeable_live_row(&self.engine)
                        .map(|(port, slot)| (oi, port, slot))
                });
                let dead_mirror = self.engine.find_purgeable_mirror_row();
                if dead_op.is_none() && dead_mirror.is_none() {
                    break;
                }
                let before = self.metrics.purged + self.engine.mirror_purged;
                self.purge_cycle();
                if self.metrics.purged + self.engine.mirror_purged == before {
                    panic!(
                        "certificate violation at finish: provably-dead rows are \
                         still live after a purge fixpoint (operator {dead_op:?}, \
                         mirror {dead_mirror:?})"
                    );
                }
            }
        }
        self.sample();
        self.metrics.mirror_purged = self.engine.mirror_purged;
        self.metrics.punct_dropped = self.engine.punct_dropped;
        if self.cfg.tiering.is_some() {
            let mut ts = TierStats::default();
            for op in &self.ops {
                ts.add(&op.tier_stats());
            }
            self.metrics.rows_demoted = ts.rows_demoted;
            self.metrics.rows_faulted = ts.rows_faulted;
            self.metrics.segments_written = ts.segments_written;
            self.metrics.segments_retired = ts.segments_retired;
        }
        let operators = self
            .ops
            .iter()
            .map(|op| OperatorSnapshot {
                span: op.span().to_vec(),
                port_live: op.port_live(),
                stats: op.stats,
            })
            .collect();
        let snapshot = LiveStateSnapshot {
            op_port_slots: self.ops.iter().map(JoinOperator::port_live_slots).collect(),
            mirror_slots: self
                .query
                .stream_ids()
                .map(|s| self.engine.mirror_state(s).live_slots())
                .collect(),
        };
        let result = RunResult {
            outputs: self.outputs,
            aggregates: self.aggregates,
            metrics: self.metrics,
            operators,
        };
        (result, snapshot)
    }

    /// Structural fingerprint of (query, plan shape, schemes, config): two
    /// executors agree iff they were compiled from the same inputs, which is
    /// the precondition for overlaying one's snapshot onto the other. Built
    /// from stable ids only (never interned symbols or `Debug` strings, which
    /// are process-local).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::default();
        fp.word(self.query.n_streams() as u64);
        for p in self.query.predicates() {
            fp.word(p.left.stream.0 as u64);
            fp.word(p.left.attr.0 as u64);
            fp.word(p.right.stream.0 as u64);
            fp.word(p.right.attr.0 as u64);
        }
        for s in self.query.stream_ids() {
            let store = self.engine.punct_store(s);
            fp.word(store.schemes().len() as u64);
            for scheme in store.schemes() {
                fp.word(u64::from(scheme.is_ordered()));
                fp.word(scheme.punctuatable().len() as u64);
                for a in scheme.punctuatable() {
                    fp.word(a.0 as u64);
                }
            }
        }
        fp.word(self.ops.len() as u64);
        for (op, parent) in self.ops.iter().zip(&self.parent) {
            fp.word(op.port_spans().len() as u64);
            for span in op.port_spans() {
                fp.word(span.len() as u64);
                for s in span {
                    fp.word(s.0 as u64);
                }
            }
            match parent {
                Some((po, pp)) => {
                    fp.word(*po as u64);
                    fp.word(*pp as u64);
                }
                None => fp.word(u64::MAX),
            }
        }
        self.cfg.fingerprint_into(&mut fp);
        fp.finish()
    }

    /// Serializes every piece of state [`Executor::try_push`] mutates — the
    /// snapshot a fresh compile of the same inputs can overlay to resume
    /// byte-identically (used by [`ShardedExecutor`](crate::parallel::ShardedExecutor)
    /// for its per-shard sub-snapshots).
    pub(crate) fn write_snapshot(&self, e: &mut Enc) {
        e.u64(self.clock);
        e.usize(self.since_purge);
        e.usize(self.adaptive_batch);
        e.u64s(&self.last_punct);
        e.usize(self.stall_flagged.len());
        for &b in &self.stall_flagged {
            e.bool(b);
        }
        match &self.port_bounds {
            Some(bounds) => {
                e.bool(true);
                e.usize(bounds.len());
                for b in bounds {
                    match b {
                        Some(v) => {
                            e.bool(true);
                            e.u64(*v);
                        }
                        None => e.bool(false),
                    }
                }
            }
            None => e.bool(false),
        }
        e.usize(self.outputs.len());
        for row in &self.outputs {
            e.usize(row.len());
            for v in row {
                e.value(v);
            }
        }
        self.metrics.write_state(e);
        self.engine.write_state(e);
        for op in &self.ops {
            op.write_state(e);
        }
    }

    /// Overlays a serialized snapshot onto this freshly compiled executor
    /// (the counterpart of [`Executor::write_snapshot`]).
    pub(crate) fn read_snapshot(&mut self, d: &mut Dec<'_>) -> SnapshotResult<()> {
        use crate::checkpoint::SnapshotError;
        self.clock = d.u64()?;
        self.since_purge = d.usize()?;
        self.adaptive_batch = d.usize()?;
        let last_punct = d.u64s()?;
        if last_punct.len() != self.last_punct.len() {
            return Err(SnapshotError("stream count disagrees with snapshot".into()));
        }
        self.last_punct = last_punct;
        let n = d.usize()?;
        if n != self.stall_flagged.len() {
            return Err(SnapshotError("stream count disagrees with snapshot".into()));
        }
        for f in &mut self.stall_flagged {
            *f = d.bool()?;
        }
        self.port_bounds = if d.bool()? {
            let n = d.usize()?;
            let mut bounds = Vec::with_capacity(n);
            for _ in 0..n {
                bounds.push(if d.bool()? { Some(d.u64()?) } else { None });
            }
            Some(bounds)
        } else {
            None
        };
        let n = d.usize()?;
        let mut outputs = Vec::with_capacity(n);
        for _ in 0..n {
            let w = d.usize()?;
            let mut row = Vec::with_capacity(w);
            for _ in 0..w {
                row.push(d.value()?);
            }
            outputs.push(row);
        }
        self.outputs = outputs;
        self.metrics = Metrics::read_state(d)?;
        self.engine.read_state(d)?;
        let spill = &mut self.spill;
        for (i, op) in self.ops.iter_mut().enumerate() {
            op.read_state(d, spill, i)?;
        }
        Ok(())
    }

    /// Builds the complete checkpoint payload: manifest (kind, fingerprint,
    /// cadence, input cursor) followed by the executor snapshot. Refuses
    /// executors with a group-by stage — its open-group state is not
    /// serialized, and a silent partial snapshot would be worse than an
    /// error.
    fn snapshot_payload(&self, every: u64, cursor: &InputCursor) -> ExecResult<Vec<u8>> {
        if self.groupby.is_some() {
            return Err(ExecError::CheckpointCorrupt {
                path: "<config>".into(),
                detail: "group-by stages are not checkpointable: open-group state \
                         is not serialized"
                    .into(),
            });
        }
        let mut e = Enc::new();
        Manifest {
            kind: SnapshotKind::Exec,
            fingerprint: self.fingerprint(),
            every,
            cursor: cursor.clone(),
        }
        .write(&mut e);
        self.write_snapshot(&mut e);
        Ok(e.buf)
    }

    /// Live rows a checkpoint of this executor covers: hot join state plus
    /// the raw mirror plus cold-tier rows (reported as
    /// `Metrics::checkpoint_rows`).
    pub(crate) fn checkpointable_rows(&self) -> u64 {
        (self.join_state_live() + self.engine.mirror_live() + self.cold_rows()) as u64
    }

    /// Whether this executor has a group-by stage (not checkpointable).
    pub(crate) fn has_groupby(&self) -> bool {
        self.groupby.is_some()
    }

    /// Pushes one element and checkpoints when due: every element advances
    /// `cursor` and the store's element counter; once at least the store's
    /// cadence has accumulated **and** the element is a punctuation (snapshots
    /// are punctuation-aligned consistent cuts), the full state is committed
    /// atomically to the store's directory.
    pub fn push_checkpointed(
        &mut self,
        element: &StreamElement,
        store: &mut CheckpointStore,
        cursor: &mut InputCursor,
    ) -> ExecResult<()> {
        self.try_push(element)?;
        let stream = match element {
            StreamElement::Tuple(t) => t.stream,
            StreamElement::Punctuation(p) => p.stream,
        };
        cursor.advance(stream);
        store.note_element();
        if store.due(matches!(element, StreamElement::Punctuation(_))) {
            self.commit_checkpoint(store, cursor)?;
        }
        Ok(())
    }

    /// Commits one snapshot of the current state to `store` unconditionally.
    pub fn commit_checkpoint(
        &mut self,
        store: &mut CheckpointStore,
        cursor: &InputCursor,
    ) -> ExecResult<()> {
        let payload = self.snapshot_payload(store.every(), cursor)?;
        let rows = self.checkpointable_rows();
        store
            .commit(&payload, rows)
            .map_err(|e| ExecError::CheckpointCorrupt {
                path: store.dir().display().to_string(),
                detail: e.to_string(),
            })?;
        self.metrics.checkpoints_written += 1;
        self.metrics.checkpoint_rows += rows;
        Ok(())
    }

    /// Runs a whole feed with punctuation-aligned checkpointing every
    /// `every` elements into `dir`, then finishes (see [`Executor::try_run`]).
    pub fn try_run_checkpointed(
        mut self,
        feed: &Feed,
        dir: &Path,
        every: u64,
    ) -> ExecResult<RunResult> {
        let mut store =
            CheckpointStore::open(dir, every).map_err(|e| ExecError::CheckpointCorrupt {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })?;
        let mut cursor = InputCursor::zero(self.query.n_streams());
        for e in feed {
            self.push_checkpointed(e, &mut store, &mut cursor)?;
        }
        Ok(self.finish())
    }

    /// Restores an executor from the newest valid snapshot in `dir`: compiles
    /// a fresh executor from the same inputs, verifies the snapshot's
    /// structural fingerprint against it ([`ExecError::RestoreMismatch`]),
    /// and overlays the serialized state. A corrupt newest snapshot falls
    /// back to the previous retained one (counted in
    /// `Metrics::snapshot_fallbacks`); only when no retained snapshot
    /// validates does this fail with [`ExecError::CheckpointCorrupt`].
    ///
    /// Returns the executor, a store that continues the snapshot sequence at
    /// the recorded cadence, and the input cursor to resume the feed from.
    pub fn restore(
        dir: &Path,
        query: &Cjq,
        schemes: &SchemeSet,
        plan: &Plan,
        cfg: ExecConfig,
    ) -> ExecResult<(Self, CheckpointStore, InputCursor)> {
        let corrupt = |detail: String| ExecError::CheckpointCorrupt {
            path: dir.display().to_string(),
            detail,
        };
        let (payload, fallbacks, path) = CheckpointStore::load_latest(dir).map_err(&corrupt)?;
        let mut exec = Executor::compile(query, schemes, plan, cfg)
            .map_err(|e| corrupt(format!("cannot compile executor for restore: {e}")))?;
        let mut d = Dec::new(&payload);
        let manifest = Manifest::read(&mut d).map_err(|e| corrupt(e.to_string()))?;
        if manifest.kind != SnapshotKind::Exec {
            return Err(corrupt(format!(
                "snapshot at {} is not an executor snapshot",
                path.display()
            )));
        }
        let expected = exec.fingerprint();
        if manifest.fingerprint != expected {
            return Err(ExecError::RestoreMismatch {
                expected,
                found: manifest.fingerprint,
            });
        }
        exec.read_snapshot(&mut d)
            .map_err(|e| corrupt(e.to_string()))?;
        d.expect_end().map_err(|e| corrupt(e.to_string()))?;
        exec.metrics.restores += 1;
        exec.metrics.snapshot_fallbacks += fallbacks;
        let store =
            CheckpointStore::open(dir, manifest.every).map_err(|e| corrupt(e.to_string()))?;
        Ok((exec, store, manifest.cursor))
    }

    /// Restores from `dir` (see [`Executor::restore`]) and resumes `feed`
    /// from the recorded input cursor — skipping exactly the elements the
    /// snapshot already consumed — with checkpointing continuing at the
    /// recorded cadence. When `dir` holds no snapshot at all (a crash before
    /// the first commit), this cold-starts: the whole feed replays under
    /// checkpointing at cadence `every` (ignored otherwise — the manifest's
    /// recorded cadence wins). Either way the result is byte-identical to an
    /// uninterrupted [`Executor::try_run_checkpointed`] over the same feed
    /// (modulo wall time and the checkpoint counters themselves).
    pub fn try_resume(
        dir: &Path,
        query: &Cjq,
        schemes: &SchemeSet,
        plan: &Plan,
        cfg: ExecConfig,
        feed: &Feed,
        every: u64,
    ) -> ExecResult<RunResult> {
        if crate::checkpoint::list_snapshots(dir).is_empty() {
            let exec = Executor::compile(query, schemes, plan, cfg).map_err(|e| {
                ExecError::CheckpointCorrupt {
                    path: dir.display().to_string(),
                    detail: format!("cannot compile executor for cold start: {e}"),
                }
            })?;
            return exec.try_run_checkpointed(feed, dir, every);
        }
        let (mut exec, mut store, mut cursor) = Executor::restore(dir, query, schemes, plan, cfg)?;
        let done = usize::try_from(cursor.elements).unwrap_or(usize::MAX);
        for e in feed.elements().iter().skip(done) {
            exec.push_checkpointed(e, &mut store, &mut cursor)?;
        }
        Ok(exec.finish())
    }
}

/// Cadence/sample portion of the run-cap rule, shared by
/// [`Executor::run_cap`] and the registry's batch router so both chunk a
/// same-stream run at identical purge and sample boundaries — the
/// prerequisite for byte-identical registry-vs-standalone equivalence.
/// Always at least 1.
pub(crate) fn cadence_run_cap(
    cadence: PurgeCadence,
    adaptive_batch: usize,
    since_purge: usize,
    clock: u64,
    sample_every: usize,
) -> usize {
    let mut cap = match cadence {
        PurgeCadence::Lazy { batch } => batch.saturating_sub(since_purge),
        PurgeCadence::Adaptive { .. } => adaptive_batch.saturating_sub(since_purge),
        _ => usize::MAX,
    };
    let every = sample_every as u64;
    if every > 0 {
        cap = cap.min((every - clock % every) as usize);
    }
    cap.max(1)
}

/// Recursively builds operators bottom-up; returns each subtree's span.
#[allow(clippy::too_many_arguments)]
fn build(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    scope: PurgeScope,
    engine: &PurgeEngine,
    ops: &mut Vec<JoinOperator>,
    parent: &mut Vec<Option<(usize, usize)>>,
    leaf_route: &mut FxHashMap<StreamId, (usize, usize)>,
) -> Vec<StreamId> {
    match plan {
        Plan::Leaf(s) => vec![*s],
        Plan::Join(children) => {
            // Compile children first, remembering which are leaves.
            let child_info: Vec<(Option<usize>, Vec<StreamId>)> = children
                .iter()
                .map(|c| {
                    let span = build(query, schemes, c, scope, engine, ops, parent, leaf_route);
                    let op_idx = match c {
                        Plan::Leaf(_) => None,
                        Plan::Join(_) => Some(ops.len() - 1),
                    };
                    (op_idx, span)
                })
                .collect();
            let port_spans: Vec<Vec<StreamId>> =
                child_info.iter().map(|(_, s)| s.clone()).collect();
            let op = JoinOperator::new(query, schemes, port_spans, scope, engine);
            let span = op.span().to_vec();
            let my_idx = ops.len();
            ops.push(op);
            parent.push(None);
            for (port, (child_op, child_span)) in child_info.into_iter().enumerate() {
                match child_op {
                    Some(ci) => parent[ci] = Some((my_idx, port)),
                    None => {
                        leaf_route.insert(child_span[0], (my_idx, port));
                    }
                }
            }
            span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cjq_core::fixtures;
    use cjq_core::schema::AttrId;

    fn ival(v: i64) -> Value {
        Value::Int(v)
    }

    fn item(itemid: i64) -> StreamElement {
        Tuple::of(0, vec![ival(7), ival(itemid), "x".into(), ival(100)]).into()
    }

    fn bid(itemid: i64, incr: i64) -> StreamElement {
        Tuple::of(1, vec![ival(3), ival(itemid), ival(incr)]).into()
    }

    fn bid_close(itemid: i64) -> StreamElement {
        Punctuation::with_constants(StreamId(1), 3, &[(AttrId(1), ival(itemid))]).into()
    }

    fn item_unique(itemid: i64) -> StreamElement {
        Punctuation::with_constants(StreamId(0), 4, &[(AttrId(1), ival(itemid))]).into()
    }

    #[test]
    fn auction_end_to_end_with_groupby() {
        let (q, r) = fixtures::auction();
        let plan = Plan::mjoin_all(&q);
        let exec = Executor::compile(&q, &r, &plan, ExecConfig::default())
            .unwrap()
            .with_groupby(
                &[AttrRef {
                    stream: StreamId(1),
                    attr: AttrId(1),
                }],
                Aggregate::Sum(AttrRef {
                    stream: StreamId(1),
                    attr: AttrId(2),
                }),
            );
        let feed = Feed::from_elements(vec![
            item(1),
            item_unique(1),
            bid(1, 5),
            bid(1, 7),
            item(2),
            item_unique(2),
            bid(2, 9),
            bid_close(1), // auction 1 closes: group emitted, states purged
            bid(2, 1),
            bid_close(2),
        ]);
        let res = exec.run(&feed);
        assert_eq!(res.metrics.tuples_in, 6);
        assert_eq!(res.metrics.puncts_in, 4);
        assert_eq!(res.metrics.outputs, 4, "each bid joins its item once");
        // Aggregates: item 1 total 12, item 2 total 10, closed by punctuation.
        assert_eq!(res.aggregates.len(), 2);
        assert!(res.aggregates.contains(&vec![ival(1), ival(12)]));
        assert!(res.aggregates.contains(&vec![ival(2), ival(10)]));
        // After the final purge everything is dead.
        assert_eq!(res.metrics.last().unwrap().join_state, 0);
        assert_eq!(res.metrics.last().unwrap().groups, 0);
    }

    #[test]
    fn certificate_verifier_samples_rows_and_passes() {
        let (q, r) = fixtures::auction();
        let cfg = ExecConfig {
            verify_certificates: true,
            ..ExecConfig::default()
        };
        let exec = Executor::compile(&q, &r, &Plan::mjoin_all(&q), cfg).unwrap();
        let mut feed = Feed::new();
        for i in 0..20 {
            feed.push(item(i));
            feed.push(item_unique(i));
            feed.push(bid(i, 1));
            feed.push(bid_close(i));
        }
        let res = exec.run(&feed);
        assert!(
            res.metrics.certificate_checks > 0,
            "verifier must re-check rows against the oracle"
        );
        assert_eq!(res.metrics.last().unwrap().join_state, 0);
    }

    #[test]
    fn verifier_accepts_unsafe_plans_with_uncertified_ports() {
        // Fig. 7: a safe query whose left-deep binary plan has unpurgeable
        // ports. The static certificates agree (no recipe, no certificate),
        // so verification passes even though some state grows.
        let (q, r) = fixtures::fig5();
        let cfg = ExecConfig {
            verify_certificates: true,
            ..ExecConfig::default()
        };
        let plan = Plan::left_deep(&[StreamId(0), StreamId(1), StreamId(2)]);
        let exec = Executor::compile(&q, &r, &plan, cfg).unwrap();
        assert!(exec
            .operators()
            .iter()
            .any(|op| { (0..op.port_spans().len()).any(|p| !op.port_purgeable(p)) }));
        exec.finish();
    }

    #[test]
    fn safe_query_without_punctuations_grows() {
        let (q, r) = fixtures::auction();
        let plan = Plan::mjoin_all(&q);
        let exec = Executor::compile(&q, &r, &plan, ExecConfig::default()).unwrap();
        let mut feed = Feed::new();
        for i in 0..100 {
            feed.push(item(i));
            feed.push(bid(i, 1));
        }
        let res = exec.run(&feed);
        // No punctuations ever arrive: nothing can be purged.
        assert_eq!(res.metrics.last().unwrap().join_state, 200);
        assert_eq!(res.metrics.purged, 0);
    }

    #[test]
    fn punctuations_bound_the_state() {
        let (q, r) = fixtures::auction();
        let plan = Plan::mjoin_all(&q);
        let exec = Executor::compile(&q, &r, &plan, ExecConfig::default()).unwrap();
        let mut feed = Feed::new();
        for i in 0..100 {
            feed.push(item(i));
            feed.push(item_unique(i));
            feed.push(bid(i, 1));
            feed.push(bid_close(i));
        }
        let res = exec.run(&feed);
        assert_eq!(res.metrics.outputs, 100);
        assert_eq!(res.metrics.last().unwrap().join_state, 0);
        // The state never holds more than the in-flight auctions.
        assert!(
            res.metrics.peak_join_state <= 4,
            "peak {} should stay tiny",
            res.metrics.peak_join_state
        );
    }

    #[test]
    fn unsafe_plan_grows_while_safe_plan_stays_bounded() {
        // Figure 7: Fig. 5's query, MJoin plan vs (S1 ⋈ S2) ⋈ S3.
        let (q, r) = fixtures::fig5();
        let mk_feed = || {
            let mut feed = Feed::new();
            for i in 0..50i64 {
                // S1(A,B), S2(B,C), S3(A,C): one fully-joining triple per i.
                feed.push(Tuple::of(0, vec![ival(i), ival(i)]));
                feed.push(Tuple::of(1, vec![ival(i), ival(i)]));
                feed.push(Tuple::of(2, vec![ival(i), ival(i)]));
                // Punctuations on every scheme, closing key i.
                feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                    StreamId(0),
                    2,
                    &[(AttrId(1), ival(i))],
                )));
                feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                    StreamId(1),
                    2,
                    &[(AttrId(1), ival(i))],
                )));
                feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                    StreamId(2),
                    2,
                    &[(AttrId(0), ival(i))],
                )));
            }
            feed
        };
        let safe = Executor::compile(&q, &r, &Plan::mjoin_all(&q), ExecConfig::default()).unwrap();
        let res_safe = safe.run(&mk_feed());
        assert_eq!(res_safe.metrics.last().unwrap().join_state, 0);
        assert!(res_safe.metrics.peak_join_state <= 6);

        let unsafe_plan = Plan::left_deep(&[StreamId(0), StreamId(1), StreamId(2)]);
        let lower = Executor::compile(&q, &r, &unsafe_plan, ExecConfig::default()).unwrap();
        let res_unsafe = lower.run(&mk_feed());
        // The lower binary join can never purge its S1 input (no punctuation
        // scheme on S2.B): that port alone retains all 50 S1 tuples forever.
        assert!(
            res_unsafe.metrics.last().unwrap().join_state >= 50,
            "unsafe plan state = {}",
            res_unsafe.metrics.last().unwrap().join_state
        );
        // Both plans produce identical results.
        assert_eq!(res_safe.metrics.outputs, res_unsafe.metrics.outputs);
        assert_eq!(res_safe.metrics.outputs, 50);
    }

    #[test]
    fn query_scope_bounds_even_unsafe_plans() {
        let (q, r) = fixtures::fig5();
        let unsafe_plan = Plan::left_deep(&[StreamId(0), StreamId(1), StreamId(2)]);
        let cfg = ExecConfig {
            scope: PurgeScope::Query,
            ..ExecConfig::default()
        };
        let exec = Executor::compile(&q, &r, &unsafe_plan, cfg).unwrap();
        let mut feed = Feed::new();
        for i in 0..50i64 {
            feed.push(Tuple::of(0, vec![ival(i), ival(i)]));
            feed.push(Tuple::of(1, vec![ival(i), ival(i)]));
            feed.push(Tuple::of(2, vec![ival(i), ival(i)]));
            feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                StreamId(0),
                2,
                &[(AttrId(1), ival(i))],
            )));
            feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                StreamId(1),
                2,
                &[(AttrId(1), ival(i))],
            )));
            feed.push(StreamElement::Punctuation(Punctuation::with_constants(
                StreamId(2),
                2,
                &[(AttrId(0), ival(i))],
            )));
        }
        let res = exec.run(&feed);
        assert_eq!(res.metrics.outputs, 50);
        // §2.4's separate-purge-engine model: plan-independent boundedness.
        assert!(
            res.metrics.peak_join_state <= 8,
            "peak {} should stay bounded under Query scope",
            res.metrics.peak_join_state
        );
    }

    #[test]
    fn lazy_cadence_purges_in_batches() {
        let (q, r) = fixtures::auction();
        let plan = Plan::mjoin_all(&q);
        let cfg = ExecConfig {
            cadence: PurgeCadence::Lazy { batch: 50 },
            sample_every: 10, // sample densely enough to observe the sawtooth
            ..ExecConfig::default()
        };
        let exec = Executor::compile(&q, &r, &plan, cfg).unwrap();
        let mut feed = Feed::new();
        for i in 0..30 {
            feed.push(item(i));
            feed.push(item_unique(i));
            feed.push(bid(i, 1));
            feed.push(bid_close(i));
        }
        let res = exec.run(&feed);
        // 120 elements / batch 50 => 2 in-run cycles + 1 final.
        assert_eq!(res.metrics.purge_cycles, 3);
        assert_eq!(res.metrics.last().unwrap().join_state, 0);
        // Lazy mode holds more state between cycles than eager mode would.
        assert!(res.metrics.peak_join_state >= 20);
    }

    #[test]
    fn adaptive_cadence_lands_between_eager_and_never() {
        let (q, r) = fixtures::fig5();
        let kcfg = cjq_workload_free_keyed(&q, &r, 400, 4);
        let run = |cadence: PurgeCadence| {
            let cfg = ExecConfig {
                cadence,
                sample_every: 16,
                record_outputs: false,
                ..ExecConfig::default()
            };
            let exec = Executor::compile(&q, &r, &Plan::mjoin_all(&q), cfg).unwrap();
            exec.run(&kcfg).metrics
        };
        let eager = run(PurgeCadence::Eager);
        let adaptive = run(PurgeCadence::Adaptive { initial: 256 });
        let never = run(PurgeCadence::Never);
        assert_eq!(adaptive.outputs, eager.outputs);
        assert!(adaptive.peak_join_state >= eager.peak_join_state);
        assert!(adaptive.peak_join_state < never.peak_join_state / 2);
        assert!(adaptive.purge_cycles > 1);
        assert!(adaptive.purge_cycles < eager.purge_cycles);
    }

    /// Inline round-keyed feed (the workload crate depends on this one).
    fn cjq_workload_free_keyed(q: &Cjq, r: &SchemeSet, rounds: usize, lag: usize) -> Feed {
        let mut feed = Feed::new();
        for round in 0..rounds + lag {
            if round < rounds {
                for s in q.stream_ids() {
                    let arity = q.catalog().schema(s).unwrap().arity();
                    feed.push(Tuple::new(s, vec![ival(round as i64); arity]));
                }
            }
            if round >= lag {
                let key = (round - lag) as i64;
                for scheme in r.schemes() {
                    let arity = q.catalog().schema(scheme.stream).unwrap().arity();
                    let values = vec![ival(key); scheme.arity()];
                    feed.push(StreamElement::Punctuation(
                        scheme.instantiate(arity, &values).unwrap(),
                    ));
                }
            }
        }
        feed
    }

    #[test]
    fn never_cadence_disables_purging() {
        let (q, r) = fixtures::auction();
        let cfg = ExecConfig {
            cadence: PurgeCadence::Never,
            ..ExecConfig::default()
        };
        let exec = Executor::compile(&q, &r, &Plan::mjoin_all(&q), cfg).unwrap();
        let mut feed = Feed::new();
        for i in 0..20 {
            feed.push(item(i));
            feed.push(item_unique(i));
            feed.push(bid(i, 1));
            feed.push(bid_close(i));
        }
        let mut exec = exec;
        for e in &feed {
            exec.push(e);
        }
        // Before finish(): nothing was purged along the way.
        assert_eq!(exec.join_state_live(), 40);
        let res = exec.finish();
        // finish() runs one last cycle, which purges everything.
        assert_eq!(res.metrics.last().unwrap().join_state, 0);
    }

    #[test]
    fn window_semantics_bound_state_but_can_lose_results() {
        let (q, r) = fixtures::auction();
        // All 60 items posted first, then all bids: an item is 60..120
        // elements older than its bid.
        let mut feed = Feed::new();
        for i in 0..60 {
            feed.push(item(i));
        }
        for i in 0..60 {
            feed.push(bid(i, 1));
        }
        let run = |window: Option<u64>| {
            let cfg = ExecConfig {
                window,
                cadence: PurgeCadence::Never,
                ..ExecConfig::default()
            };
            let exec = Executor::compile(&q, &r, &Plan::mjoin_all(&q), cfg).unwrap();
            exec.run(&feed).metrics
        };
        // No window, no punctuations: complete results, unbounded state.
        let unbounded = run(None);
        assert_eq!(unbounded.outputs, 60);
        assert_eq!(unbounded.last().unwrap().join_state, 120);
        // A window of 200 covers everything: complete and (trivially) bounded.
        let wide = run(Some(200));
        assert_eq!(wide.outputs, 60);
        // A window of 30 keeps state small but evicts items before their
        // bids arrive: results are LOST — the window-baseline trade-off.
        let narrow = run(Some(30));
        assert!(
            narrow.outputs < 60,
            "narrow window loses joins: {}",
            narrow.outputs
        );
        assert!(narrow.peak_join_state <= 40);
    }

    #[test]
    fn violating_tuples_are_rejected_and_counted() {
        let (q, r) = fixtures::auction();
        let exec = Executor::compile(&q, &r, &Plan::mjoin_all(&q), ExecConfig::default()).unwrap();
        let feed = Feed::from_elements(vec![
            item(1),
            bid_close(1),
            bid(1, 5), // violates the close punctuation
            bid(2, 5),
        ]);
        let res = exec.run(&feed);
        assert_eq!(res.metrics.violations, 1);
        assert_eq!(res.metrics.tuples_in, 2);
        assert_eq!(res.metrics.outputs, 0);
    }

    #[test]
    fn run_result_reports_per_operator_snapshots() {
        let (q, r) = fixtures::fig5();
        let plan = Plan::left_deep(&[StreamId(0), StreamId(1), StreamId(2)]);
        let exec = Executor::compile(&q, &r, &plan, ExecConfig::default()).unwrap();
        let mut feed = Feed::new();
        for i in 0..10i64 {
            feed.push(Tuple::of(0, vec![ival(i), ival(i)]));
            feed.push(Tuple::of(1, vec![ival(i), ival(i)]));
            feed.push(Tuple::of(2, vec![ival(i), ival(i)]));
        }
        let res = exec.run(&feed);
        assert_eq!(res.operators.len(), 2);
        // Bottom-up: lower binary join first, root last.
        assert_eq!(res.operators[0].span, vec![StreamId(0), StreamId(1)]);
        assert_eq!(res.operators[1].span.len(), 3);
        // Without punctuations, the lower join retains its 20 raw inputs.
        assert_eq!(res.operators[0].port_live.iter().sum::<usize>(), 20);
        assert_eq!(res.operators[1].stats.outputs, 10);
    }

    #[test]
    fn compile_rejects_leaf_plans() {
        let (q, r) = fixtures::auction();
        assert!(Executor::compile(&q, &r, &Plan::leaf(0), ExecConfig::default()).is_err());
    }
}
