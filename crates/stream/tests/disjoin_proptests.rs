//! Property tests for the disjunctive join extension: semantics against a
//! nested-loop reference and purge soundness against a purge-free run.

use proptest::prelude::*;

use cjq_core::disjunctive::{DisjunctiveCjq, DisjunctiveGroup};
use cjq_core::punctuation::Punctuation;
use cjq_core::query::JoinPredicate;
use cjq_core::schema::{AttrId, Catalog, StreamId, StreamSchema};
use cjq_core::scheme::{PunctuationScheme, SchemeSet};
use cjq_core::value::Value;
use cjq_stream::disjoin::DisjunctiveJoin;
use cjq_stream::tuple::Tuple;

/// a(x, y) OR-joined with b(x, y), schemes on both attributes of both sides.
fn or_query() -> (DisjunctiveCjq, SchemeSet) {
    let mut cat = Catalog::new();
    cat.add_stream(StreamSchema::new("a", ["x", "y"]).unwrap());
    cat.add_stream(StreamSchema::new("b", ["x", "y"]).unwrap());
    let group = DisjunctiveGroup::new(vec![
        JoinPredicate::between(0, 0, 1, 0).unwrap(),
        JoinPredicate::between(0, 1, 1, 1).unwrap(),
    ])
    .unwrap();
    let q = DisjunctiveCjq::new(cat, vec![group]).unwrap();
    let r = SchemeSet::from_schemes([
        PunctuationScheme::on(0, &[0]).unwrap(),
        PunctuationScheme::on(0, &[1]).unwrap(),
        PunctuationScheme::on(1, &[0]).unwrap(),
        PunctuationScheme::on(1, &[1]).unwrap(),
    ]);
    (q, r)
}

/// One feed action: tuple or punctuation, derived from raw seeds, kept
/// punctuation-consistent (per-attribute dead-value sets).
#[derive(Debug, Clone)]
enum Action {
    Tuple(Tuple),
    Punct(Punctuation),
}

fn build_actions(seeds: &[(u8, u64)], domain: i64) -> Vec<Action> {
    // dead[stream][attr] = punctuated values.
    let mut dead = [
        [
            std::collections::HashSet::new(),
            std::collections::HashSet::new(),
        ],
        [
            std::collections::HashSet::new(),
            std::collections::HashSet::new(),
        ],
    ];
    let mut out = Vec::new();
    let mut state = 0xA5A5_5A5A_1234_5678u64;
    let mut next = |seed: u64| {
        state = state
            .wrapping_add(seed)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 17
    };
    for &(kind, seed) in seeds {
        let stream = (next(seed) % 2) as usize;
        if kind % 4 == 0 {
            let attr = (next(seed) % 2) as usize;
            let v = (next(seed) % domain as u64) as i64;
            dead[stream][attr].insert(v);
            out.push(Action::Punct(Punctuation::with_constants(
                StreamId(stream),
                2,
                &[(AttrId(attr), Value::Int(v))],
            )));
        } else {
            'attempt: for _ in 0..8 {
                let x = (next(seed) % domain as u64) as i64;
                let y = (next(seed) % domain as u64) as i64;
                if dead[stream][0].contains(&x) || dead[stream][1].contains(&y) {
                    continue 'attempt;
                }
                out.push(Action::Tuple(Tuple::of(
                    stream,
                    [Value::Int(x), Value::Int(y)],
                )));
                break;
            }
        }
    }
    out
}

fn run(actions: &[Action], with_punctuations: bool) -> Vec<Vec<Value>> {
    let (q, r) = or_query();
    let mut j = DisjunctiveJoin::new(&q, &r);
    let mut outputs = Vec::new();
    for (i, a) in actions.iter().enumerate() {
        match a {
            Action::Tuple(t) => outputs.extend(j.process_tuple(t)),
            Action::Punct(p) => {
                if with_punctuations {
                    j.process_punctuation(p, i as u64);
                }
            }
        }
    }
    outputs.sort();
    outputs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Purging never changes the OR-join's result multiset.
    #[test]
    fn disjunctive_purging_is_sound(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..120),
        domain in 2i64..6,
    ) {
        let actions = build_actions(&seeds, domain);
        let purged = run(&actions, true);
        let baseline = run(&actions, false);
        prop_assert_eq!(purged, baseline);
    }

    /// The streamed OR-join matches a naive nested-loop evaluation.
    #[test]
    fn disjunctive_join_matches_reference(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..100),
        domain in 2i64..6,
    ) {
        let actions = build_actions(&seeds, domain);
        let streamed = run(&actions, false);

        let lefts: Vec<&Tuple> = actions.iter().filter_map(|a| match a {
            Action::Tuple(t) if t.stream == StreamId(0) => Some(t),
            _ => None,
        }).collect();
        let rights: Vec<&Tuple> = actions.iter().filter_map(|a| match a {
            Action::Tuple(t) if t.stream == StreamId(1) => Some(t),
            _ => None,
        }).collect();
        let mut reference = Vec::new();
        for l in &lefts {
            for r in &rights {
                if l.values[0] == r.values[0] || l.values[1] == r.values[1] {
                    let mut row = l.values.clone();
                    row.extend_from_slice(&r.values);
                    reference.push(row);
                }
            }
        }
        reference.sort();
        prop_assert_eq!(streamed, reference);
    }
}
