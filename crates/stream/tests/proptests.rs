//! End-to-end soundness of the runtime purge machinery.
//!
//! The defining property of punctuation-based purging (paper Definition 1):
//! a purged tuple must never have produced another result. We check it
//! behaviorally: running the same punctuation-consistent feed with purging
//! enabled (eager/lazy, operator/query scope, any plan) must produce exactly
//! the same result multiset as running it with purging disabled.

use std::collections::HashSet;

use proptest::prelude::*;

use cjq_core::fixtures;
use cjq_core::plan::Plan;
use cjq_core::punctuation::Punctuation;
use cjq_core::query::Cjq;
use cjq_core::schema::{AttrId, StreamId};
use cjq_core::scheme::SchemeSet;
use cjq_core::value::Value;
use cjq_stream::element::StreamElement;
use cjq_stream::exec::{ExecConfig, Executor, PurgeCadence};
use cjq_stream::purge::PurgeScope;
use cjq_stream::source::Feed;
use cjq_stream::tuple::Tuple;

/// Deterministically expands raw action seeds into a punctuation-consistent
/// feed: a tuple matching an earlier punctuation is re-rolled a few times and
/// dropped if still dead.
fn build_feed(query: &Cjq, schemes: &SchemeSet, seeds: &[(u8, u64)], domain: i64) -> Feed {
    let n = query.n_streams();
    let mut feed = Feed::new();
    // Track punctuated combos per scheme to keep the feed consistent.
    let mut dead: Vec<HashSet<Vec<Value>>> = vec![HashSet::new(); schemes.len()];
    let scheme_list = schemes.schemes();
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    let mut next = |seed: u64| {
        rng_state = rng_state
            .wrapping_add(seed)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng_state >> 16
    };

    for &(kind, seed) in seeds {
        if kind % 4 == 0 && !scheme_list.is_empty() {
            // Punctuation on a random scheme with random constants.
            let si = (next(seed) as usize) % scheme_list.len();
            let scheme = &scheme_list[si];
            let arity = query.catalog().schema(scheme.stream).unwrap().arity();
            let values: Vec<Value> = scheme
                .punctuatable()
                .iter()
                .map(|_| Value::Int((next(seed) % domain as u64) as i64))
                .collect();
            let p = scheme.instantiate(arity, &values).unwrap();
            dead[si].insert(values);
            feed.push(p);
        } else {
            // Tuple on a random stream; re-roll if it violates a punctuation.
            let stream = StreamId((next(seed) as usize) % n);
            let arity = query.catalog().schema(stream).unwrap().arity();
            'attempt: for _ in 0..8 {
                let values: Vec<Value> = (0..arity)
                    .map(|_| Value::Int((next(seed) % domain as u64) as i64))
                    .collect();
                for (si, scheme) in scheme_list.iter().enumerate() {
                    if scheme.stream != stream {
                        continue;
                    }
                    let combo: Vec<Value> =
                        scheme.punctuatable().iter().map(|a| values[a.0]).collect();
                    if dead[si].contains(&combo) {
                        continue 'attempt;
                    }
                }
                feed.push(Tuple::new(stream, values));
                break;
            }
        }
    }
    feed
}

/// All binary left-deep plans plus the flat MJoin for a 3-stream query.
fn plans_for(query: &Cjq) -> Vec<Plan> {
    let mut plans = vec![Plan::mjoin_all(query)];
    if query.n_streams() == 3 {
        for order in [[0usize, 1, 2], [1, 2, 0], [0, 2, 1]] {
            let ids: Vec<StreamId> = order.iter().map(|&i| StreamId(i)).collect();
            let plan = Plan::left_deep(&ids);
            if plan.validate(query).is_ok() {
                plans.push(plan);
            }
        }
    }
    plans
}

fn sorted_outputs(mut outs: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    outs.sort();
    outs
}

fn run_with(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    feed: &Feed,
    cadence: PurgeCadence,
    scope: PurgeScope,
) -> Vec<Vec<Value>> {
    let cfg = ExecConfig {
        cadence,
        scope,
        sample_every: 16,
        ..ExecConfig::default()
    };
    let exec = Executor::compile(query, schemes, plan, cfg).expect("compiles");
    sorted_outputs(exec.run(feed).outputs)
}

fn check_purging_preserves_outputs(
    fixture: fn() -> (Cjq, SchemeSet),
    seeds: &[(u8, u64)],
    domain: i64,
) -> Result<(), TestCaseError> {
    let (query, schemes) = fixture();
    let feed = build_feed(&query, &schemes, seeds, domain);
    for plan in plans_for(&query) {
        let baseline = run_with(
            &query,
            &schemes,
            &plan,
            &feed,
            PurgeCadence::Never,
            PurgeScope::Operator,
        );
        for cadence in [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 7 }] {
            for scope in [PurgeScope::Operator, PurgeScope::Query] {
                let purged = run_with(&query, &schemes, &plan, &feed, cadence, scope);
                prop_assert_eq!(
                    &purged,
                    &baseline,
                    "outputs diverged: plan {} cadence {:?} scope {:?}",
                    plan,
                    cadence,
                    scope
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Auction (Example 1): purging never changes the result set.
    #[test]
    fn auction_purging_is_sound(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..120),
        domain in 2i64..6,
    ) {
        check_purging_preserves_outputs(fixtures::auction, &seeds, domain)?;
    }

    /// Figure 3 (partial purgeability: only S1's state has a recipe).
    #[test]
    fn fig3_purging_is_sound(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..100),
        domain in 2i64..5,
    ) {
        check_purging_preserves_outputs(fixtures::fig3, &seeds, domain)?;
    }

    /// Figure 5 (safe MJoin, unsafe binary plans — all must agree).
    #[test]
    fn fig5_purging_is_sound(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..100),
        domain in 2i64..5,
    ) {
        check_purging_preserves_outputs(fixtures::fig5, &seeds, domain)?;
    }

    /// Figure 8 (multi-attribute schemes drive the hyper-edge purge path).
    #[test]
    fn fig8_purging_is_sound(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..100),
        domain in 2i64..5,
    ) {
        check_purging_preserves_outputs(fixtures::fig8, &seeds, domain)?;
    }

    /// All plans of one query produce identical outputs (join reordering
    /// invariance of the runtime).
    #[test]
    fn plans_agree_on_outputs(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..80),
        domain in 2i64..5,
    ) {
        let (query, schemes) = fixtures::fig5();
        let feed = build_feed(&query, &schemes, &seeds, domain);
        let plans = plans_for(&query);
        let reference = run_with(
            &query, &schemes, &plans[0], &feed, PurgeCadence::Eager, PurgeScope::Operator,
        );
        for plan in &plans[1..] {
            let outs = run_with(
                &query, &schemes, plan, &feed, PurgeCadence::Eager, PurgeScope::Operator,
            );
            prop_assert_eq!(&outs, &reference, "plan {} diverged", plan);
        }
    }

    /// Emitted aggregates are final: once a group is closed by a punctuation,
    /// no later feed element may belong to it (checked by the executor's
    /// violation counter staying at zero for consistent feeds).
    #[test]
    fn consistent_feeds_have_no_violations(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..120),
        domain in 2i64..6,
    ) {
        let (query, schemes) = fixtures::auction();
        let feed = build_feed(&query, &schemes, &seeds, domain);
        let exec = Executor::compile(
            &query, &schemes, &Plan::mjoin_all(&query), ExecConfig::default(),
        ).unwrap();
        let res = exec.run(&feed);
        prop_assert_eq!(res.metrics.violations, 0);
        prop_assert_eq!(res.outputs.len() as u64, res.metrics.outputs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Watermark (ordered-scheme) purging never loses results: random
    /// time-ordered trade/quote feeds with heartbeats at random points,
    /// compared against a purge-free run.
    #[test]
    fn watermark_purging_is_sound(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..120),
        symbols in 1i64..4,
    ) {
        // trade(ts, sym, px) ⋈ quote(ts, sym, bid) with ordered ts schemes
        // (inlined: the workload crate depends on this one).
        let query = {
            use cjq_core::schema::{Catalog, StreamSchema};
            let mut cat = Catalog::new();
            cat.add_stream(StreamSchema::new("trade", ["ts", "sym", "px"]).unwrap());
            cat.add_stream(StreamSchema::new("quote", ["ts", "sym", "bid"]).unwrap());
            Cjq::new(
                cat,
                vec![
                    cjq_core::query::JoinPredicate::between(0, 0, 1, 0).unwrap(),
                    cjq_core::query::JoinPredicate::between(0, 1, 1, 1).unwrap(),
                ],
            )
            .unwrap()
        };
        let schemes = SchemeSet::from_schemes([
            cjq_core::scheme::PunctuationScheme::ordered_on(0, 0).unwrap(),
            cjq_core::scheme::PunctuationScheme::ordered_on(1, 0).unwrap(),
        ]);
        // Build a consistent feed: a monotone per-stream watermark; tuples
        // carry ts >= watermark + 1 of their own stream.
        let mut feed = Feed::new();
        let mut watermark = [-1i64, -1];
        let mut clock = 0i64;
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = |seed: u64| {
            state = state
                .wrapping_add(seed)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 18
        };
        for &(kind, seed) in &seeds {
            let stream = (next(seed) % 2) as usize;
            if kind % 5 == 0 {
                // Heartbeat somewhere between the current watermark and clock.
                let lo = watermark[stream];
                let bound = lo + 1 + (next(seed) as i64 % (clock - lo).max(1));
                watermark[stream] = watermark[stream].max(bound);
                feed.push(Punctuation::heartbeat(
                    StreamId(stream),
                    3,
                    AttrId(0),
                    Value::Int(bound),
                ));
            } else {
                // Tuple at a time strictly above this stream's watermark.
                clock += (next(seed) % 2) as i64;
                let ts = (watermark[stream] + 1).max(clock);
                clock = clock.max(ts);
                let sym = next(seed) as i64 % symbols;
                feed.push(Tuple::of(
                    stream,
                    [Value::Int(ts), Value::Int(sym), Value::Int(1)],
                ));
            }
        }
        let baseline = run_with(
            &query, &schemes, &Plan::mjoin_all(&query), &feed,
            PurgeCadence::Never, PurgeScope::Operator,
        );
        for cadence in [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 9 }] {
            let purged = run_with(
                &query, &schemes, &Plan::mjoin_all(&query), &feed,
                cadence, PurgeScope::Operator,
            );
            prop_assert_eq!(&purged, &baseline, "cadence {:?}", cadence);
        }
    }

    /// Group-by correctness under punctuation-closing: every aggregate
    /// emitted by a punctuation must equal the key's total over the complete
    /// output set, and no key is emitted twice. (Guards the propagation
    /// condition: a group may only close once no stored tuple of the
    /// punctuated stream can still extend it.)
    #[test]
    fn punctuation_closed_aggregates_are_complete(
        seeds in prop::collection::vec((any::<u8>(), any::<u64>()), 1..140),
        domain in 2i64..6,
    ) {
        use cjq_core::schema::AttrRef;
        use cjq_stream::groupby::Aggregate;
        let (query, schemes) = fixtures::auction();
        let feed = build_feed(&query, &schemes, &seeds, domain);
        let exec = Executor::compile(
            &query, &schemes, &Plan::mjoin_all(&query), ExecConfig::default(),
        )
        .unwrap()
        .with_groupby(
            &[AttrRef { stream: StreamId(1), attr: AttrId(1) }], // bid.itemid
            Aggregate::Sum(AttrRef { stream: StreamId(1), attr: AttrId(2) }), // increase
        );
        let res = exec.run(&feed);

        // Reference totals per itemid over ALL outputs (layout: 4 item cols
        // then 3 bid cols; itemid at 5, increase at 6).
        let mut totals: std::collections::HashMap<Value, i64> = std::collections::HashMap::new();
        for row in &res.outputs {
            let Value::Int(inc) = row[6] else { panic!("int increase") };
            *totals.entry(row[5]).or_insert(0) += inc;
        }
        let mut seen_keys = HashSet::new();
        for agg in &res.aggregates {
            prop_assert!(seen_keys.insert(agg[0]), "group {} emitted twice", agg[0]);
            let Value::Int(sum) = agg[1] else { panic!("int sum") };
            prop_assert_eq!(
                Some(&sum),
                totals.get(&agg[0]).or(Some(&0)),
                "group {} closed with incomplete total",
                &agg[0]
            );
        }
    }
}

/// Deterministic regression: a punctuation-heavy feed where eager purging
/// fires between every join — shapes that once triggered recipe-order bugs.
#[test]
fn dense_punctuation_interleaving_regression() {
    let (query, schemes) = fixtures::fig8();
    let mut feed = Feed::new();
    for i in 0..10i64 {
        feed.push(Tuple::of(0, [Value::Int(i), Value::Int(i)]));
        feed.push(StreamElement::Punctuation(Punctuation::with_constants(
            StreamId(1),
            2,
            &[(AttrId(0), Value::Int(i))], // S2(+,_): B = i
        )));
        feed.push(Tuple::of(2, [Value::Int(i), Value::Int(i)]));
        feed.push(StreamElement::Punctuation(Punctuation::with_constants(
            StreamId(2),
            2,
            &[(AttrId(0), Value::Int(i)), (AttrId(1), Value::Int(i))], // S3(+,+)
        )));
    }
    let baseline = run_with(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        &feed,
        PurgeCadence::Never,
        PurgeScope::Operator,
    );
    let eager = run_with(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        &feed,
        PurgeCadence::Eager,
        PurgeScope::Operator,
    );
    assert_eq!(baseline, eager);
}
