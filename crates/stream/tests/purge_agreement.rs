//! Fast-path / oracle agreement: [`PurgeEngine::check_roots_with`] (the
//! allocation-free purge-pass hot path), [`PurgeEngine::check_roots`] (the
//! allocating twin), and [`PurgeEngine::explain`] (the explaining oracle)
//! must never disagree on a purge verdict — over random queries, random
//! scheme subsets, random feeds, and adversarially small coverage limits
//! (where every path must fall back to "not purgeable" identically).
//!
//! Queries are generated inline: the workload crate's generators cannot be
//! used here (`cjq-workload` depends on this crate).

use std::collections::HashMap;

use proptest::prelude::*;

use cjq_core::query::{Cjq, JoinPredicate};
use cjq_core::schema::{Catalog, StreamId, StreamSchema};
use cjq_core::scheme::{PunctuationScheme, SchemeSet};
use cjq_core::value::Value;
use cjq_stream::exec::{ExecConfig, Executor, PurgeCadence};
use cjq_stream::purge::{CheckScratch, PurgeEngine};
use cjq_stream::tuple::Tuple;

/// Builds a random 2-attribute-per-stream query: path, star, or cycle
/// topology over `n` streams, with join attributes picked from the seed.
fn random_query(n: usize, topology: u8, mut bits: u64) -> Cjq {
    let mut take = move || {
        let b = bits & 1;
        bits >>= 1;
        b as usize
    };
    let mut cat = Catalog::new();
    for i in 0..n {
        cat.add_stream(StreamSchema::new(format!("s{i}"), ["a", "b"]).unwrap());
    }
    let mut preds = Vec::new();
    match topology % 3 {
        0 => {
            // Path: s0 — s1 — ... — s(n-1).
            for i in 0..n - 1 {
                preds.push(JoinPredicate::between(i, take(), i + 1, take()).unwrap());
            }
        }
        1 => {
            // Star around s0.
            for i in 1..n {
                preds.push(JoinPredicate::between(0, take(), i, take()).unwrap());
            }
        }
        _ => {
            // Cycle: path plus a closing edge (degenerates to the path for
            // n = 2, where the closing edge could duplicate a predicate).
            for i in 0..n - 1 {
                preds.push(JoinPredicate::between(i, take(), i + 1, take()).unwrap());
            }
            if n > 2 {
                preds.push(JoinPredicate::between(n - 1, take(), 0, take()).unwrap());
            }
        }
    }
    Cjq::new(cat, preds).unwrap()
}

/// A random scheme subset: each single-attribute scheme on a join attribute
/// is included per seed bit (plus both-attribute schemes occasionally).
fn random_schemes(query: &Cjq, mut bits: u64) -> SchemeSet {
    let mut take = move || {
        let b = bits & 1;
        bits >>= 1;
        b == 1
    };
    let mut schemes = Vec::new();
    for s in query.stream_ids() {
        let join_attrs: Vec<usize> = (0..2)
            .filter(|&a| {
                query.predicates().iter().any(|p| {
                    (p.left.stream == s && p.left.attr.0 == a)
                        || (p.right.stream == s && p.right.attr.0 == a)
                })
            })
            .collect();
        for &a in &join_attrs {
            if take() {
                schemes.push(PunctuationScheme::on(s.0, &[a]).unwrap());
            }
        }
        if join_attrs.len() == 2 && take() && take() {
            schemes.push(PunctuationScheme::on(s.0, &[0, 1]).unwrap());
        }
    }
    SchemeSet::from_schemes(schemes)
}

/// Feeds random tuples and punctuations into `engine`, with timestamps
/// starting at `t0` (arrival times must stay monotone across calls).
fn feed_engine(
    engine: &mut PurgeEngine,
    query: &Cjq,
    schemes: &SchemeSet,
    seeds: &[u64],
    domain: u64,
    t0: u64,
) {
    let n = query.n_streams();
    let scheme_list = schemes.schemes();
    for (i, &seed) in seeds.iter().enumerate() {
        let now = t0 + i as u64;
        if seed % 3 == 0 && !scheme_list.is_empty() {
            let scheme = &scheme_list[(seed as usize / 3) % scheme_list.len()];
            let arity = query.catalog().schema(scheme.stream).unwrap().arity();
            let values: Vec<Value> = scheme
                .punctuatable()
                .iter()
                .enumerate()
                .map(|(k, _)| Value::Int(((seed >> (8 + 4 * k)) % domain) as i64))
                .collect();
            engine.observe_punctuation(&scheme.instantiate(arity, &values).unwrap(), now);
        } else {
            let stream = StreamId((seed as usize) % n);
            let values: Vec<Value> = (0..2)
                .map(|k| Value::Int(((seed >> (16 + 8 * k)) % domain) as i64))
                .collect();
            engine.observe_tuple_at(&Tuple::new(stream, values), now);
        }
    }
}

/// Asserts all three check paths agree on every live mirror row.
fn assert_paths_agree(engine: &PurgeEngine, query: &Cjq) -> usize {
    let mut scratch = CheckScratch::default();
    let mut checked = 0;
    for s in query.stream_ids() {
        let Some(recipe) = engine.mirror_recipe(s) else {
            continue;
        };
        let recipe = recipe.clone();
        let state = engine.mirror_state(s);
        for (slot, row) in state.iter_live() {
            let fast = engine.check_roots_with(&recipe, &[(s, row)], &mut scratch);
            let plain = engine.check_roots(&recipe, &[(s, row)]);
            let mut roots = HashMap::new();
            roots.insert(s, row.to_vec());
            let oracle = engine.explain(&recipe, &roots).is_purgeable();
            assert_eq!(
                fast, plain,
                "scratch vs plain path, stream {s:?} slot {slot}"
            );
            assert_eq!(
                fast, oracle,
                "fast path vs explain oracle, stream {s:?} slot {slot}"
            );
            checked += 1;
        }
    }
    checked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fast purge check and the explaining oracle agree on every live
    /// mirror row of random queries — including under coverage limits so
    /// small that chained requirement sets overflow (both paths must then
    /// report "not purgeable").
    #[test]
    fn fast_path_and_oracle_never_disagree(
        n in 2usize..5,
        topology in any::<u8>(),
        scheme_bits in any::<u64>(),
        query_bits in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 10..120),
        domain in 2u64..6,
        limit_ix in 0usize..4,
    ) {
        let coverage_limit = [1usize, 2, 8, 100_000][limit_ix];
        let query = random_query(n, topology, query_bits);
        let schemes = random_schemes(&query, scheme_bits);
        let mut engine = PurgeEngine::new(&query, &schemes, None, coverage_limit);
        feed_engine(&mut engine, &query, &schemes, &seeds, domain, 0);
        assert_paths_agree(&engine, &query);
        // Purge, feed more, and re-check: verdict agreement must also hold
        // on post-purge states (shrunken chains, trimmed stores).
        engine.purge_mirror();
        feed_engine(
            &mut engine, &query, &schemes, &seeds[..seeds.len() / 2], domain, seeds.len() as u64,
        );
        assert_paths_agree(&engine, &query);
    }

    /// Operator-port verdicts agree too: the executor's per-port recipes
    /// checked via [`cjq_stream::join::JoinOperator::verify_against_oracle`]
    /// over full random runs (this is the certificate verifier's per-cycle
    /// check, driven exhaustively).
    #[test]
    fn operator_ports_agree_with_oracle(
        n in 2usize..4,
        topology in any::<u8>(),
        scheme_bits in any::<u64>(),
        query_bits in any::<u64>(),
        seeds in prop::collection::vec(any::<u64>(), 10..80),
        domain in 2u64..5,
    ) {
        use cjq_core::plan::Plan;
        let query = random_query(n, topology, query_bits);
        let schemes = random_schemes(&query, scheme_bits);
        let cfg = ExecConfig {
            cadence: PurgeCadence::Lazy { batch: 16 },
            verify_certificates: true,
            ..ExecConfig::default()
        };
        let mut exec = Executor::compile(&query, &schemes, &Plan::mjoin_all(&query), cfg)
            .expect("compile");
        let scheme_list = schemes.schemes();
        for (i, &seed) in seeds.iter().enumerate() {
            let _ = i;
            if seed % 3 == 0 && !scheme_list.is_empty() {
                let scheme = &scheme_list[(seed as usize / 3) % scheme_list.len()];
                let arity = query.catalog().schema(scheme.stream).unwrap().arity();
                let values: Vec<Value> = scheme
                    .punctuatable()
                    .iter()
                    .enumerate()
                    .map(|(k, _)| Value::Int(((seed >> (8 + 4 * k)) % domain) as i64))
                    .collect();
                exec.push(&scheme.instantiate(arity, &values).unwrap().into());
            } else {
                let stream = (seed as usize) % n;
                let values: Vec<Value> = (0..2)
                    .map(|k| Value::Int(((seed >> (16 + 8 * k)) % domain) as i64))
                    .collect();
                exec.push(&Tuple::of(stream, values).into());
            }
        }
        // Exhaustive agreement sweep over whatever state is live mid-run
        // (panics internally on any disagreement)...
        for op in exec.operators() {
            op.verify_against_oracle(exec.engine(), usize::MAX);
        }
        exec.engine().verify_mirror_against_oracle(usize::MAX);
        // ...and the finish path re-asserts completeness at the purge
        // fixpoint (verify_certificates is on).
        exec.finish();
    }
}
