//! # cjq-core — safety checking of continuous join queries over punctuated streams
//!
//! This crate implements the compile-time theory of *Li, Chen, Tatemura,
//! Agrawal, Candan, Hsiung: "Safety Guarantee of Continuous Join Queries over
//! Punctuated Data Streams" (VLDB 2006)*:
//!
//! * the data model — streams, punctuations-as-data, punctuation schemes,
//!   continuous join queries ([`schema`], [`punctuation`], [`scheme`],
//!   [`query`]);
//! * the graph constructs — join graph (Def. 6, [`join_graph`]), punctuation
//!   graph (Def. 7, [`pg`]), generalized punctuation graph (Defs. 8–10,
//!   [`gpg`]), transformed punctuation graph (Def. 11, [`tpg`]);
//! * the safety theorems — purgeability of join states and operators and
//!   safety of queries and plans (Theorems 1–5, [`safety`], [`plan`]);
//! * the chained purge strategy (§3.2.1/§4.2) reified as executable purge
//!   recipes ([`purge_plan`]).
//!
//! ## Quick example
//!
//! ```
//! use cjq_core::prelude::*;
//!
//! // The online-auction query of the paper's Example 1:
//! // item(sellerid, itemid, name, initialprice) ⋈ bid(bidderid, itemid, increase)
//! let mut catalog = Catalog::new();
//! catalog.add_stream(
//!     StreamSchema::new("item", ["sellerid", "itemid", "name", "initialprice"]).unwrap(),
//! );
//! catalog.add_stream(StreamSchema::new("bid", ["bidderid", "itemid", "increase"]).unwrap());
//! let item_id = catalog.resolve("item", "itemid").unwrap();
//! let bid_id = catalog.resolve("bid", "itemid").unwrap();
//! let query = Cjq::new(catalog, vec![JoinPredicate::new(item_id, bid_id).unwrap()]).unwrap();
//!
//! // Punctuation schemes: itemid punctuatable on both streams.
//! let schemes = SchemeSet::from_schemes([
//!     PunctuationScheme::on(0, &[1]).unwrap(),
//!     PunctuationScheme::on(1, &[1]).unwrap(),
//! ]);
//!
//! assert!(cjq_core::safety::is_query_safe(&query, &schemes));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod disjunctive;
pub mod dot;
pub mod error;
pub mod extension;
pub mod fixtures;
pub mod fxhash;
pub mod gpg;
pub mod graph;
pub mod join_graph;
pub mod pg;
pub mod plan;
pub mod punctuation;
pub mod purge_plan;
pub mod query;
pub mod safety;
pub mod schema;
pub mod scheme;
pub mod tpg;
pub mod value;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use crate::bounds::{BoundExpr, BoundReport, Contracts, StateBound};
    pub use crate::error::{CoreError, CoreResult};
    pub use crate::extension::ExtensionOrder;
    pub use crate::gpg::GeneralizedPunctuationGraph;
    pub use crate::join_graph::JoinGraph;
    pub use crate::pg::PunctuationGraph;
    pub use crate::plan::{check_plan, Plan, PlanSafety};
    pub use crate::punctuation::{Pattern, Punctuation};
    pub use crate::purge_plan::{derive_recipe, PurgeRecipe, PurgeStep, ValueBinding};
    pub use crate::query::{Cjq, JoinPredicate};
    pub use crate::safety::{check_query, is_query_safe, CheckMethod, SafetyReport};
    pub use crate::schema::{AttrId, AttrRef, Catalog, StreamId, StreamSchema};
    pub use crate::scheme::{PunctuationScheme, SchemeSet};
    pub use crate::tpg::{transform_query, TransformedPunctuationGraph};
    pub use crate::value::{Sym, Value};
}
