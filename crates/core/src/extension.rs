//! Prefix-extension attribute orders for worst-case-optimal execution.
//!
//! A GenericJoin-style operator does not probe streams pairwise; it binds the
//! query's *join-attribute equivalence classes* one at a time, intersecting
//! the candidate extensions proposed by every stream that covers the class.
//! This module derives those classes and a deterministic extension order
//! from a [`Cjq`] alone, so the planner (which costs the order) and the
//! runtime (which executes it) agree on one canonical definition.
//!
//! The first class in the order doubles as the sharded executor's routing
//! key: it is chosen by the same rule as `Partitioning::for_query` in the
//! stream crate (most covered streams, then smallest member), so hash
//! routing on the first extension attribute is exactly the routing the
//! sharded MJoin already performs.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::join_graph::JoinGraph;
use crate::query::Cjq;
use crate::schema::{AttrRef, StreamId};

/// The join-attribute equivalence classes of a query: two attribute
/// occurrences are in one class iff they are transitively equated by the
/// equi-join predicates. Classes are internally sorted and canonically
/// ordered by their smallest member. Every member occurs in at least one
/// predicate (singleton payload attributes are not classes).
#[must_use]
pub fn attr_classes(query: &Cjq) -> Vec<Vec<AttrRef>> {
    let mut ids: FxHashMap<AttrRef, usize> = FxHashMap::default();
    let mut nodes: Vec<AttrRef> = Vec::new();
    let mut parent: Vec<usize> = Vec::new();
    let mut node = |r: AttrRef, parent: &mut Vec<usize>, nodes: &mut Vec<AttrRef>| {
        *ids.entry(r).or_insert_with(|| {
            nodes.push(r);
            parent.push(parent.len());
            parent.len() - 1
        })
    };
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for p in query.predicates() {
        let a = node(p.left, &mut parent, &mut nodes);
        let b = node(p.right, &mut parent, &mut nodes);
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut by_root: FxHashMap<usize, Vec<AttrRef>> = FxHashMap::default();
    for (i, &n) in nodes.iter().enumerate() {
        let root = find(&mut parent, i);
        by_root.entry(root).or_default().push(n);
    }
    let mut classes: Vec<Vec<AttrRef>> = by_root.into_values().collect();
    for c in &mut classes {
        c.sort_unstable();
    }
    classes.sort_unstable();
    classes
}

/// A prefix-extension order over the join-attribute classes of a cyclic
/// query: the variable order a worst-case-optimal operator binds, one class
/// per level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionOrder {
    /// The classes in extension order; each class is sorted.
    pub classes: Vec<Vec<AttrRef>>,
}

impl ExtensionOrder {
    /// Derives the canonical extension order for `query`, or `None` when the
    /// join graph is acyclic — tree-shaped queries gain nothing from prefix
    /// extension, so the binary/MJoin path keeps them.
    ///
    /// The order is deterministic: the first class is the one covering the
    /// most streams (ties broken by smallest member — the
    /// `Partitioning::for_query` rule, so sharded routing is unchanged);
    /// each later class must share a stream with the prefix (connectivity
    /// keeps every intersection anchored) and is picked by the same rule.
    #[must_use]
    pub fn derive(query: &Cjq) -> Option<ExtensionOrder> {
        let graph = JoinGraph::of_query(query);
        graph.cycle_witness()?;
        let mut pool = attr_classes(query);
        let mut classes = Vec::with_capacity(pool.len());
        let mut covered: FxHashSet<StreamId> = FxHashSet::default();
        while !pool.is_empty() {
            let eligible = |c: &Vec<AttrRef>| {
                covered.is_empty() || c.iter().any(|r| covered.contains(&r.stream))
            };
            let pick = pool
                .iter()
                .enumerate()
                .filter(|(_, c)| eligible(c))
                .max_by(|(_, a), (_, b)| {
                    let sa = a.iter().map(|r| r.stream).collect::<FxHashSet<_>>().len();
                    let sb = b.iter().map(|r| r.stream).collect::<FxHashSet<_>>().len();
                    // max_by keeps the *last* max; invert the tiebreak so the
                    // smallest member wins.
                    sa.cmp(&sb).then_with(|| b[0].cmp(&a[0]))
                })
                .map(|(i, _)| i)
                // The join graph is connected, so some remaining class always
                // touches the prefix.
                .expect("non-empty pool has an eligible class");
            let class = pool.swap_remove(pick);
            covered.extend(class.iter().map(|r| r.stream));
            classes.push(class);
        }
        Some(ExtensionOrder { classes })
    }

    /// Number of extension levels (= number of join-attribute classes).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.classes.len()
    }

    /// The streams covering extension level `level` (sorted, deduped).
    #[must_use]
    pub fn covering_streams(&self, level: usize) -> Vec<StreamId> {
        let mut s: Vec<StreamId> = self.classes[level].iter().map(|r| r.stream).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Renders the order with resolved names, e.g.
    /// `{S1.B = S2.B} -> {S2.C = S3.C} -> {S1.A = S3.A}`.
    #[must_use]
    pub fn describe(&self, query: &Cjq) -> String {
        let cat = query.catalog();
        let name = |r: &AttrRef| {
            cat.schema(r.stream).map_or_else(
                || format!("{}#{}", r.stream, r.attr.0),
                |sc| format!("{}.{}", sc.name(), sc.attr_name(r.attr).unwrap_or("?")),
            )
        };
        self.classes
            .iter()
            .map(|c| {
                let members: Vec<String> = c.iter().map(name).collect();
                format!("{{{}}}", members.join(" = "))
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::schema::AttrId;

    fn aref(s: usize, a: usize) -> AttrRef {
        AttrRef {
            stream: StreamId(s),
            attr: AttrId(a),
        }
    }

    #[test]
    fn classes_of_the_triangle_query() {
        let (q, _) = fixtures::fig5();
        // S1(A,B) S2(B,C) S3(A,C); preds S1.B=S2.B, S2.C=S3.C, S3.A=S1.A.
        let classes = attr_classes(&q);
        assert_eq!(
            classes,
            vec![
                vec![aref(0, 0), aref(2, 0)], // A
                vec![aref(0, 1), aref(1, 0)], // B
                vec![aref(1, 1), aref(2, 1)], // C
            ]
        );
    }

    #[test]
    fn acyclic_queries_have_no_extension_order() {
        let (q, _) = fixtures::fig3();
        assert!(ExtensionOrder::derive(&q).is_none());
        let (q, _) = fixtures::auction();
        assert!(ExtensionOrder::derive(&q).is_none());
    }

    #[test]
    fn triangle_order_is_deterministic_and_connected() {
        let (q, _) = fixtures::fig5();
        let order = ExtensionOrder::derive(&q).expect("fig5 is cyclic");
        assert_eq!(order.levels(), 3);
        // All classes cover 2 streams; the tiebreak picks the class with the
        // smallest member first: A = {S1.A, S3.A}.
        assert_eq!(order.classes[0][0], aref(0, 0));
        // Each later class shares a stream with the prefix.
        let mut covered: Vec<StreamId> = order.covering_streams(0);
        for level in 1..order.levels() {
            let streams = order.covering_streams(level);
            assert!(
                streams.iter().any(|s| covered.contains(s)),
                "level {level} disconnected from prefix"
            );
            covered.extend(streams);
            covered.sort_unstable();
            covered.dedup();
        }
        assert_eq!(ExtensionOrder::derive(&q).unwrap(), order);
        let described = order.describe(&q);
        assert!(described.contains(" -> "), "{described}");
        assert!(described.contains('='), "{described}");
    }
}
