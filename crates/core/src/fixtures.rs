//! Worked examples from the paper, shared by tests across modules and
//! re-exported for downstream crates' tests, examples, and benches.
//!
//! Each fixture returns `(query, scheme set)` matching a figure of the paper.

use crate::query::{Cjq, JoinPredicate};
use crate::schema::{Catalog, StreamSchema};
use crate::scheme::{PunctuationScheme, SchemeSet};

/// Example 1 / Figure 1: the online-auction binary join
/// `item(sellerid, itemid, name, initialprice) ⋈ bid(bidderid, itemid, increase)`
/// with `itemid` punctuatable on both streams (unique item ids on `item`,
/// auction-close punctuations on `bid`).
#[must_use]
pub fn auction() -> (Cjq, SchemeSet) {
    let mut cat = Catalog::new();
    cat.add_stream(
        StreamSchema::new("item", ["sellerid", "itemid", "name", "initialprice"]).unwrap(),
    );
    cat.add_stream(StreamSchema::new("bid", ["bidderid", "itemid", "increase"]).unwrap());
    let q = Cjq::new(cat, vec![JoinPredicate::between(0, 1, 1, 1).unwrap()]).unwrap();
    let schemes = SchemeSet::from_schemes([
        PunctuationScheme::on(0, &[1]).unwrap(),
        PunctuationScheme::on(1, &[1]).unwrap(),
    ]);
    (q, schemes)
}

/// Figure 3: the 3-way MJoin `S1(A,B) ⋈ S2(B,C) ⋈ S3(C,A)` with predicates
/// `S1.B = S2.B`, `S2.C = S3.C`, and schemes on `S2.B` and `S3.C` — exactly
/// what the §3.2 chained-purge walkthrough needs to purge `Υ_S1`.
#[must_use]
pub fn fig3() -> (Cjq, SchemeSet) {
    let mut cat = Catalog::new();
    cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
    cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
    cat.add_stream(StreamSchema::new("S3", ["C", "A"]).unwrap());
    let q = Cjq::new(
        cat,
        vec![
            JoinPredicate::between(0, 1, 1, 0).unwrap(), // S1.B = S2.B
            JoinPredicate::between(1, 1, 2, 0).unwrap(), // S2.C = S3.C
        ],
    )
    .unwrap();
    let schemes = SchemeSet::from_schemes([
        PunctuationScheme::on(1, &[0]).unwrap(), // S2.B
        PunctuationScheme::on(2, &[0]).unwrap(), // S3.C
    ]);
    (q, schemes)
}

/// Figure 5: the predicate triangle `S1.B = S2.B`, `S2.C = S3.C`,
/// `S3.A = S1.A` with single-attribute schemes making `S1.B`, `S2.C`, `S3.A`
/// punctuatable. The punctuation graph is the 3-cycle
/// `S1 → S3 → S2 → S1`: the 3-way operator is purgeable (Corollary 1) but no
/// binary-join tree is safe (Figure 7).
#[must_use]
pub fn fig5() -> (Cjq, SchemeSet) {
    let mut cat = Catalog::new();
    cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
    cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
    cat.add_stream(StreamSchema::new("S3", ["A", "C"]).unwrap());
    let q = Cjq::new(
        cat,
        vec![
            JoinPredicate::between(0, 1, 1, 0).unwrap(), // S1.B = S2.B
            JoinPredicate::between(1, 1, 2, 1).unwrap(), // S2.C = S3.C
            JoinPredicate::between(2, 0, 0, 0).unwrap(), // S3.A = S1.A
        ],
    )
    .unwrap();
    let schemes = SchemeSet::from_schemes([
        PunctuationScheme::on(0, &[1]).unwrap(), // S1: (_, +) -> B
        PunctuationScheme::on(1, &[1]).unwrap(), // S2: (_, +) -> C
        PunctuationScheme::on(2, &[0]).unwrap(), // S3: (+, _) -> A
    ]);
    (q, schemes)
}

/// Figure 8: the same predicate triangle with
/// `ℜ = {S1(_,+), S2(+,_), S2(_,+), S3(+,+)}`. The plain punctuation graph is
/// *not* strongly connected, but the generalized punctuation graph is — the
/// multi-attribute scheme `S3(+,+)` contributes the generalized edge
/// `{S1, S2} → S3` (Figure 9), and the transformation of Figure 10 ends in a
/// single virtual node.
#[must_use]
pub fn fig8() -> (Cjq, SchemeSet) {
    let mut cat = Catalog::new();
    cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
    cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
    cat.add_stream(StreamSchema::new("S3", ["A", "C"]).unwrap());
    let q = Cjq::new(
        cat,
        vec![
            JoinPredicate::between(0, 1, 1, 0).unwrap(), // S1.B = S2.B
            JoinPredicate::between(1, 1, 2, 1).unwrap(), // S2.C = S3.C
            JoinPredicate::between(2, 0, 0, 0).unwrap(), // S3.A = S1.A
        ],
    )
    .unwrap();
    let schemes = SchemeSet::from_schemes([
        PunctuationScheme::on(0, &[1]).unwrap(),    // S1(_, +): B
        PunctuationScheme::on(1, &[0]).unwrap(),    // S2(+, _): B
        PunctuationScheme::on(1, &[1]).unwrap(),    // S2(_, +): C
        PunctuationScheme::on(2, &[0, 1]).unwrap(), // S3(+, +): A and C
    ]);
    (q, schemes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety;

    #[test]
    fn fixtures_match_the_paper_verdicts() {
        let (q, r) = auction();
        assert!(safety::is_query_safe(&q, &r));
        let (q, r) = fig5();
        assert!(safety::is_query_safe(&q, &r));
        let (q, r) = fig8();
        assert!(safety::is_query_safe(&q, &r));
        // Fig. 3's scheme set only purges S1: the query as a whole is unsafe.
        let (q, r) = fig3();
        assert!(!safety::is_query_safe(&q, &r));
    }
}
