//! Punctuation schemes (paper §2.3): which attributes of a stream *may* carry
//! constant-value punctuation patterns.
//!
//! A scheme `P^S = (P_1^S, ..., P_n^S)` marks each attribute `+` (punctuatable)
//! or `_` (wildcard only). An actual punctuation *instantiates* a scheme by
//! assigning constants to **all** its `+` attributes and `*` to the rest.
//! A stream may have several schemes; the system-wide collection is the
//! *punctuation scheme set* `ℜ` held by the query register.

use std::fmt;

use crate::error::{CoreError, CoreResult};
use crate::punctuation::{Pattern, Punctuation};
use crate::schema::{AttrId, Catalog, StreamId};
use crate::value::Value;

/// A punctuation scheme on one stream: the set of punctuatable attributes.
///
/// A scheme is either *equality-based* (instances carry constants — the
/// paper's model) or *ordered* (instances carry `≤ bound` heartbeat
/// patterns, after Srivastava & Widom \[11\]; always single-attribute).
/// For safety checking the two behave identically — both license the same
/// punctuation-graph edges — but at runtime one heartbeat covers an entire
/// ordered prefix instead of a single value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PunctuationScheme {
    /// The stream the scheme applies to.
    pub stream: StreamId,
    /// Punctuatable attribute positions, sorted and deduplicated.
    punctuatable: Vec<AttrId>,
    /// Whether instances carry `≤ bound` patterns instead of constants.
    ordered: bool,
}

impl PunctuationScheme {
    /// Creates a scheme marking `attrs` punctuatable on `stream`.
    ///
    /// At least one attribute must be punctuatable (an all-`_` scheme allows
    /// only the trivial all-`*` punctuation, which carries no information).
    pub fn new(stream: StreamId, attrs: impl IntoIterator<Item = AttrId>) -> CoreResult<Self> {
        let mut punctuatable: Vec<AttrId> = attrs.into_iter().collect();
        punctuatable.sort_unstable();
        punctuatable.dedup();
        if punctuatable.is_empty() {
            return Err(CoreError::InvalidScheme(
                "a scheme needs at least one punctuatable attribute".into(),
            ));
        }
        Ok(PunctuationScheme {
            stream,
            punctuatable,
            ordered: false,
        })
    }

    /// Convenience constructor from raw indices.
    pub fn on(stream: usize, attrs: &[usize]) -> CoreResult<Self> {
        PunctuationScheme::new(StreamId(stream), attrs.iter().copied().map(AttrId))
    }

    /// Creates an *ordered* (heartbeat/watermark) scheme on a single
    /// attribute: instances are `≤ bound` punctuations asserting that no
    /// future tuple carries a value at or below the bound.
    pub fn ordered_on(stream: usize, attr: usize) -> CoreResult<Self> {
        let mut s = PunctuationScheme::new(StreamId(stream), [AttrId(attr)])?;
        s.ordered = true;
        Ok(s)
    }

    /// Whether instances carry `≤ bound` patterns (heartbeats).
    #[must_use]
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// The punctuatable attributes, sorted ascending.
    #[must_use]
    pub fn punctuatable(&self) -> &[AttrId] {
        &self.punctuatable
    }

    /// Number of punctuatable attributes (the scheme's *arity*; 1 = "simple").
    #[must_use]
    pub fn arity(&self) -> usize {
        self.punctuatable.len()
    }

    /// Whether attribute `a` is punctuatable under this scheme.
    #[must_use]
    pub fn is_punctuatable(&self, a: AttrId) -> bool {
        self.punctuatable.binary_search(&a).is_ok()
    }

    /// Validates the scheme against a catalog (attributes in range).
    pub fn validate(&self, catalog: &Catalog) -> CoreResult<()> {
        let schema = catalog
            .schema(self.stream)
            .ok_or_else(|| CoreError::UnknownStream(format!("{}", self.stream)))?;
        for a in &self.punctuatable {
            if a.0 >= schema.arity() {
                return Err(CoreError::InvalidScheme(format!(
                    "attribute #{} out of range for stream `{}` (arity {})",
                    a.0,
                    schema.name(),
                    schema.arity()
                )));
            }
        }
        Ok(())
    }

    /// Instantiates a concrete punctuation from this scheme.
    ///
    /// `values` must supply exactly one constant per punctuatable attribute,
    /// in the scheme's (sorted) attribute order.
    pub fn instantiate(&self, arity: usize, values: &[Value]) -> CoreResult<Punctuation> {
        if values.len() != self.punctuatable.len() {
            return Err(CoreError::InvalidPunctuation(format!(
                "scheme has {} punctuatable attributes but {} values were supplied",
                self.punctuatable.len(),
                values.len()
            )));
        }
        let mut patterns = vec![Pattern::Wildcard; arity];
        for (a, v) in self.punctuatable.iter().zip(values) {
            if a.0 >= arity {
                return Err(CoreError::InvalidPunctuation(format!(
                    "attribute #{} out of range for arity {arity}",
                    a.0
                )));
            }
            patterns[a.0] = if self.ordered {
                Pattern::UpTo(*v)
            } else {
                Pattern::Constant(*v)
            };
        }
        Ok(Punctuation {
            stream: self.stream,
            patterns,
        })
    }

    /// Whether a punctuation is an instantiation of this scheme: constants
    /// (or, for ordered schemes, bounds) on exactly the punctuatable
    /// attributes, wildcards elsewhere.
    #[must_use]
    pub fn is_instance(&self, p: &Punctuation) -> bool {
        p.stream == self.stream
            && p.patterns.iter().enumerate().all(|(i, pat)| {
                let punctuatable = self.is_punctuatable(AttrId(i));
                match pat {
                    Pattern::Constant(_) => punctuatable && !self.ordered,
                    Pattern::UpTo(_) => punctuatable && self.ordered,
                    Pattern::Wildcard => !punctuatable,
                }
            })
    }
}

impl fmt::Display for PunctuationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.stream)?;
        for (i, a) in self.punctuatable.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "#{}", a.0)?;
            if self.ordered {
                write!(f, "≤")?;
            }
        }
        write!(f, "]")
    }
}

/// The punctuation scheme set `ℜ` registered in the system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemeSet {
    schemes: Vec<PunctuationScheme>,
}

impl SchemeSet {
    /// Creates an empty scheme set.
    #[must_use]
    pub fn new() -> Self {
        SchemeSet::default()
    }

    /// Builds a scheme set from an iterator, deduplicating exact repeats.
    #[must_use]
    pub fn from_schemes(schemes: impl IntoIterator<Item = PunctuationScheme>) -> Self {
        let mut set = SchemeSet::new();
        for s in schemes {
            set.add(s);
        }
        set
    }

    /// Adds a scheme (exact duplicates are ignored). Returns whether added.
    pub fn add(&mut self, scheme: PunctuationScheme) -> bool {
        if self.schemes.contains(&scheme) {
            false
        } else {
            self.schemes.push(scheme);
            true
        }
    }

    /// All registered schemes.
    #[must_use]
    pub fn schemes(&self) -> &[PunctuationScheme] {
        &self.schemes
    }

    /// Number of schemes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// Schemes registered for a given stream.
    pub fn for_stream(&self, stream: StreamId) -> impl Iterator<Item = &PunctuationScheme> {
        self.schemes.iter().filter(move |s| s.stream == stream)
    }

    /// Whether some *single-attribute* scheme makes `stream.attr` punctuatable.
    ///
    /// This is the test used by Definition 7's punctuation-graph edges in the
    /// simple-scheme setting (§4.1).
    #[must_use]
    pub fn simple_punctuatable(&self, stream: StreamId, attr: AttrId) -> bool {
        self.for_stream(stream)
            .any(|s| s.arity() == 1 && s.is_punctuatable(attr))
    }

    /// Whether *any* scheme (regardless of arity) marks `stream.attr`
    /// punctuatable. Used by diagnostics, not by safety checking.
    #[must_use]
    pub fn any_punctuatable(&self, stream: StreamId, attr: AttrId) -> bool {
        self.for_stream(stream).any(|s| s.is_punctuatable(attr))
    }

    /// Validates every scheme against the catalog.
    pub fn validate(&self, catalog: &Catalog) -> CoreResult<()> {
        self.schemes.iter().try_for_each(|s| s.validate(catalog))
    }

    /// Returns the subset of schemes in `keep`, preserving order.
    #[must_use]
    pub fn restricted(&self, keep: &[bool]) -> SchemeSet {
        assert_eq!(keep.len(), self.schemes.len(), "mask length mismatch");
        SchemeSet {
            schemes: self
                .schemes
                .iter()
                .zip(keep)
                .filter(|(_, k)| **k)
                .map(|(s, _)| s.clone())
                .collect(),
        }
    }

    /// The scheme that `p` instantiates, if any.
    #[must_use]
    pub fn matching_scheme(&self, p: &Punctuation) -> Option<&PunctuationScheme> {
        self.schemes.iter().find(|s| s.is_instance(p))
    }
}

impl fmt::Display for SchemeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.schemes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::StreamSchema;

    #[test]
    fn scheme_requires_some_punctuatable_attr() {
        assert!(PunctuationScheme::on(0, &[]).is_err());
        assert!(PunctuationScheme::on(0, &[1]).is_ok());
    }

    #[test]
    fn scheme_sorts_and_dedups() {
        let s = PunctuationScheme::on(0, &[2, 0, 2]).unwrap();
        assert_eq!(s.punctuatable(), &[AttrId(0), AttrId(2)]);
        assert_eq!(s.arity(), 2);
        assert!(s.is_punctuatable(AttrId(0)));
        assert!(!s.is_punctuatable(AttrId(1)));
    }

    #[test]
    fn instantiate_produces_scheme_instance() {
        let s = PunctuationScheme::on(1, &[1]).unwrap();
        let p = s.instantiate(3, &[Value::Int(1)]).unwrap();
        assert_eq!(p.to_string(), "S2(*, 1, *)");
        assert!(s.is_instance(&p));
        // Wrong number of values fails.
        assert!(s.instantiate(3, &[]).is_err());
        assert!(s.instantiate(3, &[Value::Int(1), Value::Int(2)]).is_err());
        // Out-of-range attribute fails.
        assert!(s.instantiate(1, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn is_instance_rejects_wrong_shape() {
        let s = PunctuationScheme::on(1, &[1]).unwrap();
        // Constant on a non-punctuatable attribute.
        let p = Punctuation::with_constants(
            StreamId(1),
            3,
            &[(AttrId(0), Value::Int(9)), (AttrId(1), Value::Int(1))],
        );
        assert!(!s.is_instance(&p));
        // Wildcard where a constant is required.
        let p = Punctuation::with_constants(StreamId(1), 3, &[]);
        assert!(!s.is_instance(&p));
        // Wrong stream.
        let p = Punctuation::with_constants(StreamId(0), 3, &[(AttrId(1), Value::Int(1))]);
        assert!(!s.is_instance(&p));
    }

    #[test]
    fn ordered_schemes_instantiate_heartbeats() {
        let s = PunctuationScheme::ordered_on(0, 1).unwrap();
        assert!(s.is_ordered());
        assert_eq!(s.arity(), 1);
        let p = s.instantiate(3, &[Value::Int(50)]).unwrap();
        assert_eq!(p.to_string(), "S1(*, ≤50, *)");
        assert!(s.is_instance(&p));
        // An equality instance is NOT an instance of the ordered scheme...
        let eq = Punctuation::with_constants(StreamId(0), 3, &[(AttrId(1), Value::Int(50))]);
        assert!(!s.is_instance(&eq));
        // ...and vice versa.
        let plain = PunctuationScheme::on(0, &[1]).unwrap();
        assert!(!plain.is_instance(&p));
        assert!(plain.is_instance(&eq));
        // Ordered schemes still count as simple/punctuatable for safety.
        let set = SchemeSet::from_schemes([s]);
        assert!(set.simple_punctuatable(StreamId(0), AttrId(1)));
    }

    #[test]
    fn scheme_set_dedups_and_queries() {
        let mut set = SchemeSet::new();
        assert!(set.add(PunctuationScheme::on(0, &[1]).unwrap()));
        assert!(!set.add(PunctuationScheme::on(0, &[1]).unwrap()));
        assert!(set.add(PunctuationScheme::on(0, &[0, 1]).unwrap()));
        assert_eq!(set.len(), 2);
        assert!(set.simple_punctuatable(StreamId(0), AttrId(1)));
        // The multi-attribute scheme must not count as "simple".
        assert!(!set.simple_punctuatable(StreamId(0), AttrId(0)));
        assert!(set.any_punctuatable(StreamId(0), AttrId(0)));
        assert!(!set.any_punctuatable(StreamId(1), AttrId(0)));
    }

    #[test]
    fn scheme_set_restriction() {
        let set = SchemeSet::from_schemes([
            PunctuationScheme::on(0, &[0]).unwrap(),
            PunctuationScheme::on(1, &[1]).unwrap(),
        ]);
        let only_second = set.restricted(&[false, true]);
        assert_eq!(only_second.len(), 1);
        assert_eq!(only_second.schemes()[0].stream, StreamId(1));
    }

    #[test]
    fn matching_scheme_lookup() {
        let set = SchemeSet::from_schemes([
            PunctuationScheme::on(1, &[1]).unwrap(),
            PunctuationScheme::on(1, &[0, 1]).unwrap(),
        ]);
        let p = Punctuation::with_constants(StreamId(1), 3, &[(AttrId(1), Value::Int(1))]);
        assert_eq!(set.matching_scheme(&p), Some(&set.schemes()[0]));
        let p2 = Punctuation::with_constants(
            StreamId(1),
            3,
            &[(AttrId(0), Value::Int(2)), (AttrId(1), Value::Int(1))],
        );
        assert_eq!(set.matching_scheme(&p2), Some(&set.schemes()[1]));
        let unmatched = Punctuation::with_constants(StreamId(1), 3, &[(AttrId(2), Value::Int(5))]);
        assert_eq!(set.matching_scheme(&unmatched), None);
    }

    #[test]
    fn validate_against_catalog() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("s", ["a", "b"]).unwrap());
        let ok = SchemeSet::from_schemes([PunctuationScheme::on(0, &[1]).unwrap()]);
        assert!(ok.validate(&cat).is_ok());
        let bad = SchemeSet::from_schemes([PunctuationScheme::on(0, &[5]).unwrap()]);
        assert!(bad.validate(&cat).is_err());
        let bad_stream = SchemeSet::from_schemes([PunctuationScheme::on(3, &[0]).unwrap()]);
        assert!(bad_stream.validate(&cat).is_err());
    }

    #[test]
    fn display_forms() {
        let set = SchemeSet::from_schemes([PunctuationScheme::on(2, &[0, 1]).unwrap()]);
        assert_eq!(set.to_string(), "{S3[#0,#1]}");
    }
}
