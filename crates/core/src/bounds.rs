//! Static state-bound analysis: symbolic per-port memory bounds.
//!
//! The safety theory (Theorem 1/3, [`crate::purge_plan`]) answers a boolean
//! question — is every port eventually purgeable — but capacity planning
//! needs the quantitative one: *how much* state can a port accumulate before
//! punctuation retires it. This module derives, per operator port, a
//! [`StateBound`] from the same reach-trace that powers purge-recipe
//! derivation, parameterised by declared *contracts*:
//!
//! * `cadence σ = N` — every value demanded on scheme `σ` is covered by a
//!   punctuation instance at most `N` feed elements after the value's first
//!   appearance on a join-equivalent attribute.
//! * `domain S.a = N` — attribute `a` of stream `S` carries at most `N`
//!   distinct values over the stream's lifetime.
//!
//! The bound lattice is `Bounded(expr) ⊑ WindowBounded(expr) ⊑ Unbounded`:
//!
//! * **`Bounded(expr)`** — the port's live *row count* never exceeds `expr`,
//!   a sum of cadence parameters. Only leaf ports qualify: a leaf port
//!   inserts at most one row per feed element, and a purge recipe with steps
//!   on schemes `σ₁..σₖ` retires any row within `Σᵢ cadence(σᵢ)` elements of
//!   its key's first appearance, so at most that many insertions can be live
//!   at once.
//! * **`WindowBounded(expr)`** — the port's rows have bounded *residency*
//!   (`expr` feed elements) but the row count per element is not structurally
//!   bounded: composite ports receive child-join fan-out, so one input
//!   element can deposit arbitrarily many rows inside the window.
//! * **`Unbounded`** — no purge recipe covers the port (Corollary 1); rows
//!   can stay live forever.
//!
//! [`analyze_plan`] walks a plan bottom-up in the executor's operator order
//! (children before parents, left to right — the same flat-port order as
//! runtime shed/peak accounting) and also reports mirror-state bounds per
//! stream and punctuation-store bounds per scheme (products of domain
//! parameters). The lint bridge surfaces the report as `E003`/`W104`/`I202`
//! diagnostics, and `cjq_stream::certify` turns evaluated `Bounded` rows
//! into runtime certificates checked against observed peaks.

use std::fmt::Write as _;

use crate::plan::Plan;
use crate::purge_plan::derive_port_recipe;
use crate::query::Cjq;
use crate::schema::{AttrId, StreamId};
use crate::scheme::{PunctuationScheme, SchemeSet};

/// Declared cadence/domain parameters (the spec's optional contract block).
///
/// Absence of a parameter is the conservative default: the corresponding
/// bound stays symbolic and cannot be evaluated to a number, so nothing is
/// enforced at runtime and `W104` reports the total as unquantifiable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Contracts {
    cadences: Vec<(PunctuationScheme, u64)>,
    domains: Vec<(StreamId, AttrId, u64)>,
}

impl Contracts {
    /// Empty contract block (every parameter unknown).
    #[must_use]
    pub fn new() -> Self {
        Contracts::default()
    }

    /// Whether no parameter at all has been declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cadences.is_empty() && self.domains.is_empty()
    }

    /// Declares (or overwrites) the cadence of `scheme`.
    pub fn set_cadence(&mut self, scheme: PunctuationScheme, n: u64) {
        if let Some(slot) = self.cadences.iter_mut().find(|(s, _)| *s == scheme) {
            slot.1 = n;
        } else {
            self.cadences.push((scheme, n));
        }
    }

    /// Declares (or overwrites) the domain size of `stream.attr`.
    pub fn set_domain(&mut self, stream: StreamId, attr: AttrId, n: u64) {
        if let Some(slot) = self
            .domains
            .iter_mut()
            .find(|(s, a, _)| *s == stream && *a == attr)
        {
            slot.2 = n;
        } else {
            self.domains.push((stream, attr, n));
        }
    }

    /// The declared cadence of `scheme`, if any.
    #[must_use]
    pub fn cadence(&self, scheme: &PunctuationScheme) -> Option<u64> {
        self.cadences
            .iter()
            .find(|(s, _)| s == scheme)
            .map(|(_, n)| *n)
    }

    /// The declared domain size of `stream.attr`, if any.
    #[must_use]
    pub fn domain(&self, stream: StreamId, attr: AttrId) -> Option<u64> {
        self.domains
            .iter()
            .find(|(s, a, _)| *s == stream && *a == attr)
            .map(|(_, _, n)| *n)
    }

    /// All declared cadences, in declaration order.
    #[must_use]
    pub fn cadences(&self) -> &[(PunctuationScheme, u64)] {
        &self.cadences
    }

    /// All declared domains, in declaration order.
    #[must_use]
    pub fn domains(&self) -> &[(StreamId, AttrId, u64)] {
        &self.domains
    }
}

/// A symbolic bound parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Param {
    /// The punctuation cadence of a scheme (feed elements from a value's
    /// first appearance to its covering punctuation).
    Cadence(PunctuationScheme),
    /// The number of distinct values an attribute carries.
    Domain(StreamId, AttrId),
}

impl Param {
    fn sort_key(&self) -> (u8, usize, Vec<usize>, bool) {
        match self {
            Param::Cadence(s) => (
                0,
                s.stream.0,
                s.punctuatable().iter().map(|a| a.0).collect(),
                s.is_ordered(),
            ),
            Param::Domain(s, a) => (1, s.0, vec![a.0], false),
        }
    }

    /// The declared value of this parameter under `contracts`, if any.
    #[must_use]
    pub fn value(&self, contracts: &Contracts) -> Option<u64> {
        match self {
            Param::Cadence(s) => contracts.cadence(s),
            Param::Domain(s, a) => contracts.domain(*s, *a),
        }
    }

    /// Renders the parameter with catalog names, e.g. `cadence(bid[itemid])`
    /// or `domain(bid.itemid)`.
    #[must_use]
    pub fn render(&self, query: &Cjq) -> String {
        let name = |s: StreamId| {
            query
                .catalog()
                .schema(s)
                .map_or_else(|| format!("s{}", s.0), |sch| sch.name().to_string())
        };
        let attr = |s: StreamId, a: AttrId| {
            query
                .catalog()
                .schema(s)
                .and_then(|sch| sch.attr_name(a).map(str::to_string))
                .unwrap_or_else(|| format!("a{}", a.0))
        };
        match self {
            Param::Cadence(s) => {
                let attrs: Vec<String> = s
                    .punctuatable()
                    .iter()
                    .map(|&a| attr(s.stream, a))
                    .collect();
                format!("cadence({}[{}])", name(s.stream), attrs.join(", "))
            }
            Param::Domain(s, a) => format!("domain({}.{})", name(*s), attr(*s, *a)),
        }
    }
}

/// A symbolic bound expression: a sum of `coefficient × Π parameters` terms
/// in canonical form (parameters sorted within a term, terms sorted and
/// like terms merged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoundExpr {
    terms: Vec<(u64, Vec<Param>)>,
}

impl BoundExpr {
    /// The zero expression.
    #[must_use]
    pub fn zero() -> Self {
        BoundExpr::default()
    }

    /// A constant expression.
    #[must_use]
    pub fn constant(c: u64) -> Self {
        let mut e = BoundExpr::zero();
        e.add_term(c, Vec::new());
        e
    }

    /// The expression consisting of a single parameter.
    #[must_use]
    pub fn param(p: Param) -> Self {
        let mut e = BoundExpr::zero();
        e.add_term(1, vec![p]);
        e
    }

    /// A single product term `coeff × Π params`.
    #[must_use]
    pub fn product(coeff: u64, params: Vec<Param>) -> Self {
        let mut e = BoundExpr::zero();
        e.add_term(coeff, params);
        e
    }

    /// Adds `coeff × Π params`, keeping the expression canonical.
    pub fn add_term(&mut self, coeff: u64, mut params: Vec<Param>) {
        if coeff == 0 {
            return;
        }
        params.sort_by_key(Param::sort_key);
        if let Some(slot) = self.terms.iter_mut().find(|(_, ps)| *ps == params) {
            slot.0 = slot.0.saturating_add(coeff);
        } else {
            self.terms.push((coeff, params));
            self.terms
                .sort_by_key(|(_, ps)| ps.iter().map(Param::sort_key).collect::<Vec<_>>());
        }
    }

    /// Adds every term of `other`.
    pub fn add(&mut self, other: &BoundExpr) {
        for (c, ps) in &other.terms {
            self.add_term(*c, ps.clone());
        }
    }

    /// The canonical terms.
    #[must_use]
    pub fn terms(&self) -> &[(u64, Vec<Param>)] {
        &self.terms
    }

    /// Every distinct parameter mentioned by the expression.
    pub fn params(&self) -> impl Iterator<Item = &Param> {
        self.terms.iter().flat_map(|(_, ps)| ps.iter())
    }

    /// Evaluates the expression under `contracts`; `None` if any mentioned
    /// parameter is undeclared. Saturating arithmetic.
    #[must_use]
    pub fn eval(&self, contracts: &Contracts) -> Option<u64> {
        let mut total: u64 = 0;
        for (coeff, params) in &self.terms {
            let mut term = *coeff;
            for p in params {
                term = term.saturating_mul(p.value(contracts)?);
            }
            total = total.saturating_add(term);
        }
        Some(total)
    }

    /// Renders the expression with catalog names, e.g.
    /// `cadence(bid[itemid]) + 2·cadence(item[itemid])`.
    #[must_use]
    pub fn render(&self, query: &Cjq) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (i, (coeff, params)) in self.terms.iter().enumerate() {
            if i > 0 {
                out.push_str(" + ");
            }
            if params.is_empty() {
                let _ = write!(out, "{coeff}");
                continue;
            }
            if *coeff != 1 {
                let _ = write!(out, "{coeff}·");
            }
            let rendered: Vec<String> = params.iter().map(|p| p.render(query)).collect();
            out.push_str(&rendered.join("·"));
        }
        out
    }
}

/// The bound lattice (see the module docs for the exact semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateBound {
    /// Live row count ≤ `expr`.
    Bounded(BoundExpr),
    /// Row residency ≤ `expr` feed elements, but per-element row count is
    /// not structurally bounded (composite-port fan-out).
    WindowBounded(BoundExpr),
    /// No purge recipe covers the state; rows can stay live forever.
    Unbounded,
}

impl StateBound {
    /// The symbolic expression, if the bound has one.
    #[must_use]
    pub fn expr(&self) -> Option<&BoundExpr> {
        match self {
            StateBound::Bounded(e) | StateBound::WindowBounded(e) => Some(e),
            StateBound::Unbounded => None,
        }
    }

    /// The evaluated *row-count* bound: only `Bounded` rows quantify rows
    /// (a `WindowBounded` expression measures residency, not cardinality).
    #[must_use]
    pub fn eval_rows(&self, contracts: &Contracts) -> Option<u64> {
        match self {
            StateBound::Bounded(e) => e.eval(contracts),
            _ => None,
        }
    }

    /// Lattice class name as printed by lint: `bounded`, `window-bounded`,
    /// or `unbounded`.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            StateBound::Bounded(_) => "bounded",
            StateBound::WindowBounded(_) => "window-bounded",
            StateBound::Unbounded => "unbounded",
        }
    }
}

/// What a [`BoundRow`] bounds.
#[derive(Debug, Clone)]
pub enum BoundSubject {
    /// One input port of a join operator. `op` is the operator's index in
    /// executor order (bottom-up, children before parents, left to right)
    /// and `port` the child index — together they name the same flat port
    /// as runtime shed/peak accounting.
    Port {
        /// Operator index in executor (bottom-up) order.
        op: usize,
        /// Port index within the operator.
        port: usize,
        /// Streams feeding this port (the child's span).
        roots: Vec<StreamId>,
        /// The operator's full span.
        span: Vec<StreamId>,
    },
    /// The per-stream mirror (arrived tuples retained for re-probe).
    Mirror {
        /// The mirrored stream.
        stream: StreamId,
    },
    /// The punctuation store for one scheme.
    PunctStore {
        /// The scheme whose instances are stored.
        scheme: PunctuationScheme,
    },
}

/// One subject with its derived bound.
#[derive(Debug, Clone)]
pub struct BoundRow {
    /// What is being bounded.
    pub subject: BoundSubject,
    /// The derived bound.
    pub bound: StateBound,
}

/// The full bound report for one plan: operator ports in executor order,
/// then mirrors per stream, then punctuation stores per scheme.
#[derive(Debug, Clone, Default)]
pub struct BoundReport {
    /// All rows, in report order.
    pub rows: Vec<BoundRow>,
}

impl BoundReport {
    /// Operator-port rows, in executor flat-port order.
    pub fn port_rows(&self) -> impl Iterator<Item = &BoundRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.subject, BoundSubject::Port { .. }))
    }

    /// Mirror rows.
    pub fn mirror_rows(&self) -> impl Iterator<Item = &BoundRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.subject, BoundSubject::Mirror { .. }))
    }

    /// Punctuation-store rows.
    pub fn punct_rows(&self) -> impl Iterator<Item = &BoundRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.subject, BoundSubject::PunctStore { .. }))
    }

    /// The summed symbolic row bound over all operator ports, or `None` if
    /// any port is not `Bounded`. This is what `W104` compares against a
    /// memory budget (the runtime budget caps live join-state rows, which is
    /// exactly the sum of port rows).
    #[must_use]
    pub fn port_total(&self) -> Option<BoundExpr> {
        let mut total = BoundExpr::zero();
        for row in self.port_rows() {
            match &row.bound {
                StateBound::Bounded(e) => total.add(e),
                _ => return None,
            }
        }
        Some(total)
    }

    /// Ranks the plan for tie-breaking: fewer `Unbounded` ports, then fewer
    /// `WindowBounded` ports, then fewer unquantifiable `Bounded` ports,
    /// then the smaller evaluated total. Lexicographically smaller is safer.
    #[must_use]
    pub fn rank(&self, contracts: &Contracts) -> (usize, usize, usize, u64) {
        let mut unbounded = 0usize;
        let mut window = 0usize;
        let mut unquantified = 0usize;
        let mut total = 0u64;
        for row in self.port_rows() {
            match &row.bound {
                StateBound::Unbounded => unbounded += 1,
                StateBound::WindowBounded(_) => window += 1,
                StateBound::Bounded(e) => match e.eval(contracts) {
                    Some(v) => total = total.saturating_add(v),
                    None => unquantified += 1,
                },
            }
        }
        (unbounded, window, unquantified, total)
    }
}

/// Derives the bound of the port spanning `roots` inside the operator over
/// `streams` (the purge scope). Leaf ports with a recipe are `Bounded` by
/// the sum of the recipe's step cadences; composite ports with a recipe are
/// `WindowBounded` by the same sum; ports without a recipe are `Unbounded`.
#[must_use]
pub fn port_bound(
    query: &Cjq,
    schemes: &SchemeSet,
    streams: &[StreamId],
    roots: &[StreamId],
) -> StateBound {
    match derive_port_recipe(query, schemes, streams, roots) {
        None => StateBound::Unbounded,
        Some(recipe) => {
            let mut expr = BoundExpr::zero();
            for step in &recipe.steps {
                expr.add(&BoundExpr::param(Param::Cadence(step.scheme.clone())));
            }
            if roots.len() == 1 {
                StateBound::Bounded(expr)
            } else {
                StateBound::WindowBounded(expr)
            }
        }
    }
}

/// Per-operator port spans in executor order: children before parents, left
/// to right, root operator last — the traversal `cjq_stream` uses to build
/// [`JoinOperator`]s, so index `i` here is operator `i` at runtime and
/// flattening the inner vectors yields the runtime flat-port order.
///
/// Returns `(port_spans, operator_span)` per operator.
///
/// [`JoinOperator`]: ../../cjq_stream/join/struct.JoinOperator.html
#[must_use]
pub fn plan_operator_ports(plan: &Plan) -> Vec<(Vec<Vec<StreamId>>, Vec<StreamId>)> {
    fn walk(node: &Plan, out: &mut Vec<(Vec<Vec<StreamId>>, Vec<StreamId>)>) {
        if let Plan::Join(children) = node {
            for c in children {
                walk(c, out);
            }
            let port_spans: Vec<Vec<StreamId>> = children.iter().map(Plan::span).collect();
            out.push((port_spans, node.span()));
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Derives every port bound of `plan`, using each operator's own span as the
/// purge scope (lint semantics, matching the `E002` pass). Set
/// `whole_query_scope` to widen every derivation to the full query span —
/// the semantics of `PurgeScope::Query` at runtime, where recipes may lean
/// on schemes outside the operator's own span.
#[must_use]
pub fn plan_port_bounds(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    whole_query_scope: bool,
) -> Vec<Vec<StateBound>> {
    let full_span: Vec<StreamId> = query.stream_ids().collect();
    plan_operator_ports(plan)
        .iter()
        .map(|(ports, span)| {
            let scope: &[StreamId] = if whole_query_scope { &full_span } else { span };
            ports
                .iter()
                .map(|roots| port_bound(query, schemes, scope, roots))
                .collect()
        })
        .collect()
}

/// Runs the full analysis for `plan`: operator-port bounds (executor
/// order), mirror bounds per stream (a mirror row is retired by the purge
/// recipe rooted at its own stream over the whole query), and
/// punctuation-store bounds per scheme (equality stores hold at most the
/// product of the punctuatable attributes' domains; an ordered store keeps
/// a single frontier entry).
#[must_use]
pub fn analyze_plan(query: &Cjq, schemes: &SchemeSet, plan: &Plan) -> BoundReport {
    let mut rows = Vec::new();
    let per_op = plan_operator_ports(plan);
    let bounds = plan_port_bounds(query, schemes, plan, false);
    for (op, ((ports, span), port_bounds)) in per_op.iter().zip(&bounds).enumerate() {
        for (port, (roots, bound)) in ports.iter().zip(port_bounds).enumerate() {
            rows.push(BoundRow {
                subject: BoundSubject::Port {
                    op,
                    port,
                    roots: roots.clone(),
                    span: span.clone(),
                },
                bound: bound.clone(),
            });
        }
    }
    let full_span: Vec<StreamId> = query.stream_ids().collect();
    for s in query.stream_ids() {
        rows.push(BoundRow {
            subject: BoundSubject::Mirror { stream: s },
            bound: port_bound(query, schemes, &full_span, &[s]),
        });
    }
    for scheme in schemes.schemes() {
        let bound = if scheme.is_ordered() {
            StateBound::Bounded(BoundExpr::constant(1))
        } else {
            let params: Vec<Param> = scheme
                .punctuatable()
                .iter()
                .map(|&a| Param::Domain(scheme.stream, a))
                .collect();
            StateBound::Bounded(BoundExpr::product(1, params))
        };
        rows.push(BoundRow {
            subject: BoundSubject::PunctStore {
                scheme: scheme.clone(),
            },
            bound,
        });
    }
    BoundReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn contracts_for(schemes: &SchemeSet, cadence: u64) -> Contracts {
        let mut c = Contracts::new();
        for s in schemes.schemes() {
            c.set_cadence(s.clone(), cadence);
        }
        c
    }

    #[test]
    fn auction_ports_bounded_by_cadence_sum() {
        let (query, schemes) = fixtures::auction();
        let plan = Plan::mjoin_all(&query);
        let report = analyze_plan(&query, &schemes, &plan);
        let ports: Vec<&BoundRow> = report.port_rows().collect();
        assert_eq!(ports.len(), 2);
        for row in &ports {
            // Each leaf port is retired by the *other* stream's scheme.
            match &row.bound {
                StateBound::Bounded(e) => assert_eq!(e.terms().len(), 1),
                other => panic!("expected Bounded, got {other:?}"),
            }
        }
        let contracts = contracts_for(&schemes, 8);
        let total = report.port_total().expect("all ports bounded");
        assert_eq!(total.eval(&contracts), Some(16));
    }

    #[test]
    fn fig3_chain_bound_sums_step_cadences() {
        let (query, schemes) = fixtures::fig3();
        let plan = Plan::mjoin_all(&query);
        let bounds = plan_port_bounds(&query, &schemes, &plan, false);
        assert_eq!(bounds.len(), 1);
        // S1's port needs the chained recipe over S2 then S3: two cadences.
        let contracts = contracts_for(&schemes, 5);
        let s1_terms = match &bounds[0][0] {
            StateBound::Bounded(e) => e.terms().len(),
            other => panic!("expected Bounded, got {other:?}"),
        };
        assert_eq!(s1_terms, 2, "S1 needs the chained recipe over S2 then S3");
        assert_eq!(bounds[0][0].eval_rows(&contracts), Some(10));
        // Only S1 is chain-purgeable under ℜ = {S2.B, S3.C} (§3.2.1); the
        // other ports are unbounded and poison the total.
        let report = analyze_plan(&query, &schemes, &plan);
        assert!(report
            .port_rows()
            .any(|r| matches!(r.bound, StateBound::Unbounded)));
        assert!(report.port_total().is_none());
    }

    #[test]
    fn fig5_mjoin_ports_all_bounded() {
        let (query, schemes) = fixtures::fig5();
        let plan = Plan::mjoin_all(&query);
        let report = analyze_plan(&query, &schemes, &plan);
        for row in report.port_rows() {
            assert!(
                matches!(row.bound, StateBound::Bounded(_)),
                "the 3-cycle makes every MJoin port purgeable: {:?}",
                row.bound
            );
        }
        assert!(report.port_total().is_some());
    }

    #[test]
    fn composite_port_is_window_bounded() {
        let (query, schemes) = fixtures::fig8();
        // Binary tree: ((S1 ⋈ S2) ⋈ (S3 ⋈ S4)) — composite ports at the root.
        let ids: Vec<usize> = query.stream_ids().map(|s| s.0).collect();
        if ids.len() < 4 {
            return;
        }
        let plan = Plan::join(vec![
            Plan::join(vec![Plan::leaf(ids[0]), Plan::leaf(ids[1])]),
            Plan::join(vec![Plan::leaf(ids[2]), Plan::leaf(ids[3])]),
        ]);
        if plan.validate(&query).is_err() {
            return;
        }
        let report = analyze_plan(&query, &schemes, &plan);
        let composite: Vec<&BoundRow> = report
            .port_rows()
            .filter(|r| matches!(&r.subject, BoundSubject::Port { roots, .. } if roots.len() > 1))
            .collect();
        assert!(!composite.is_empty());
        for row in composite {
            assert!(
                matches!(
                    row.bound,
                    StateBound::WindowBounded(_) | StateBound::Unbounded
                ),
                "composite ports never claim a row-count bound: {:?}",
                row.bound
            );
        }
    }

    #[test]
    fn executor_order_is_children_first() {
        let plan = Plan::join(vec![
            Plan::join(vec![Plan::leaf(0), Plan::leaf(1)]),
            Plan::leaf(2),
        ]);
        let ops = plan_operator_ports(&plan);
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].1, vec![StreamId(0), StreamId(1)]);
        assert_eq!(ops[1].1, vec![StreamId(0), StreamId(1), StreamId(2)]);
    }

    #[test]
    fn expr_canonicalizes_and_evaluates() {
        let (query, schemes) = fixtures::auction();
        let s0 = schemes.schemes()[0].clone();
        let s1 = schemes.schemes()[1].clone();
        let mut a = BoundExpr::param(Param::Cadence(s0.clone()));
        a.add(&BoundExpr::param(Param::Cadence(s1.clone())));
        let mut b = BoundExpr::param(Param::Cadence(s1.clone()));
        b.add(&BoundExpr::param(Param::Cadence(s0.clone())));
        assert_eq!(a, b, "term order is canonical");
        a.add(&BoundExpr::param(Param::Cadence(s0.clone())));
        let mut c = Contracts::new();
        assert_eq!(a.eval(&c), None, "undeclared params don't evaluate");
        c.set_cadence(s0, 3);
        c.set_cadence(s1, 4);
        assert_eq!(a.eval(&c), Some(10));
        assert!(a.render(&query).contains("cadence("));
    }

    #[test]
    fn domain_products_bound_punct_stores() {
        let (query, schemes) = fixtures::auction();
        let plan = Plan::mjoin_all(&query);
        let report = analyze_plan(&query, &schemes, &plan);
        let mut contracts = Contracts::new();
        for scheme in schemes.schemes() {
            for &a in scheme.punctuatable() {
                contracts.set_domain(scheme.stream, a, 100);
            }
        }
        for row in report.punct_rows() {
            assert_eq!(row.bound.eval_rows(&contracts), Some(100));
        }
        let _ = query;
    }
}
