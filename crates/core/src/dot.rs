//! Graphviz (DOT) rendering of the paper's graph constructs, for debugging
//! and for regenerating figures like the paper's Figures 5, 9, and 10.
//!
//! All functions return a `String` containing a self-contained `digraph`
//! (or `graph` for the undirected join graph); render with
//! `dot -Tsvg out.dot`.

use std::fmt::Write as _;

use crate::gpg::GeneralizedPunctuationGraph;
use crate::join_graph::JoinGraph;
use crate::pg::PunctuationGraph;
use crate::query::Cjq;
use crate::schema::StreamId;
use crate::tpg::TransformedPunctuationGraph;

fn stream_label(query: &Cjq, s: StreamId) -> String {
    query
        .catalog()
        .schema(s)
        .map_or_else(|| s.to_string(), |sc| sc.name().to_owned())
}

/// Renders the Definition 6 join graph (undirected; edges labeled with their
/// predicates).
#[must_use]
pub fn join_graph(query: &Cjq, jg: &JoinGraph) -> String {
    let mut out = String::from("graph join_graph {\n  node [shape=ellipse];\n");
    for &s in jg.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", s.0, stream_label(query, s));
    }
    for (i, &a) in jg.nodes().iter().enumerate() {
        for &b in &jg.nodes()[i + 1..] {
            let preds = jg.predicates_between(a, b);
            if !preds.is_empty() {
                let label: Vec<String> = preds.iter().map(|p| query.display_predicate(p)).collect();
                let _ = writeln!(
                    out,
                    "  {} -- {} [label=\"{}\"];",
                    a.0,
                    b.0,
                    label.join("\\n")
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the Definition 7 punctuation graph (directed; edges annotated
/// with the punctuatable endpoint that licensed them), as in Figure 5.
#[must_use]
pub fn punctuation_graph(query: &Cjq, pg: &PunctuationGraph) -> String {
    let mut out = String::from("digraph punctuation_graph {\n  node [shape=ellipse];\n");
    for &s in pg.streams() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", s.0, stream_label(query, s));
    }
    for &u in pg.streams() {
        for &v in pg.streams() {
            let reasons = pg.edge_reasons(u, v);
            if !reasons.is_empty() {
                let label: Vec<String> = reasons
                    .iter()
                    .map(|r| query.catalog().display_ref(r.punctuatable_on))
                    .collect();
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{}\"];",
                    u.0,
                    v.0,
                    label.join("\\n")
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the Definition 8 generalized punctuation graph: plain edges solid,
/// each hyper edge as a small junction point with dashed source arcs and a
/// solid arc into the target — the Figure 9 shape.
#[must_use]
pub fn generalized_punctuation_graph(query: &Cjq, gpg: &GeneralizedPunctuationGraph) -> String {
    let mut out = punctuation_graph(query, gpg.plain());
    out.truncate(out.len() - 2); // drop the closing "}\n"
    for (i, edge) in gpg.hyper_edges().iter().enumerate() {
        let junction = format!("h{i}");
        let _ = writeln!(out, "  {junction} [shape=point, width=0.08];");
        let mut sources: Vec<StreamId> = edge
            .requirements
            .iter()
            .flat_map(|r| r.candidates.iter().copied())
            .collect();
        sources.sort_unstable();
        sources.dedup();
        for s in sources {
            let _ = writeln!(
                out,
                "  {} -> {junction} [style=dashed, arrowhead=none];",
                s.0
            );
        }
        let _ = writeln!(
            out,
            "  {junction} -> {} [label=\"{}\"];",
            edge.target.0, edge.scheme
        );
    }
    out.push_str("}\n");
    out
}

/// Renders the last round of a Definition 11 transformation: virtual nodes
/// as clusters of their covered streams — the Figure 10 shape.
#[must_use]
pub fn transformed_punctuation_graph(query: &Cjq, tpg: &TransformedPunctuationGraph) -> String {
    let mut out = String::from("digraph transformed_punctuation_graph {\n  compound=true;\n");
    let last = tpg.history.last().expect("at least one snapshot");
    for (ni, node) in last.nodes.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{ni} {{");
        let _ = writeln!(out, "    label=\"V{}\";", ni + 1);
        for &s in node {
            let _ = writeln!(out, "    {} [label=\"{}\"];", s.0, stream_label(query, s));
        }
        out.push_str("  }\n");
    }
    for &(a, b) in &last.edges {
        // Connect via representative streams, clipped to the clusters.
        let ra = last.nodes[a][0].0;
        let rb = last.nodes[b][0].0;
        let _ = writeln!(
            out,
            "  {ra} -> {rb} [ltail=cluster_{a}, lhead=cluster_{b}];"
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::tpg;

    #[test]
    fn join_graph_dot() {
        let (q, _) = fixtures::fig3();
        let jg = JoinGraph::of_query(&q);
        let dot = join_graph(&q, &jg);
        assert!(dot.starts_with("graph join_graph {"));
        assert!(dot.contains("0 -- 1"));
        assert!(dot.contains("S1.B = S2.B"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn punctuation_graph_dot_shows_the_fig5_cycle() {
        let (q, r) = fixtures::fig5();
        let pg = PunctuationGraph::of_query(&q, &r);
        let dot = punctuation_graph(&q, &pg);
        assert!(dot.contains("1 -> 0 [label=\"S1.B\"]"));
        assert!(dot.contains("2 -> 1 [label=\"S2.C\"]"));
        assert!(dot.contains("0 -> 2 [label=\"S3.A\"]"));
    }

    #[test]
    fn gpg_dot_renders_hyper_edges() {
        let (q, r) = fixtures::fig8();
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        let dot = generalized_punctuation_graph(&q, &gpg);
        assert!(dot.contains("h0 [shape=point"));
        assert!(dot.contains("0 -> h0 [style=dashed"));
        assert!(dot.contains("1 -> h0 [style=dashed"));
        assert!(dot.contains("h0 -> 2"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn tpg_dot_renders_clusters() {
        let (q, r) = fixtures::fig8();
        let t = tpg::transform_query(&q, &r);
        let dot = transformed_punctuation_graph(&q, &t);
        assert!(dot.contains("subgraph cluster_0"));
        // Final state is one cluster with all three streams.
        assert_eq!(dot.matches("subgraph").count(), 1);
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
