//! Safety checking for **disjunctive** join predicates — the paper's §7
//! future work (ii), built on the same punctuation-graph machinery.
//!
//! A disjunctive predicate between streams `u` and `v`,
//! `u.a₁ = v.b₁ ∨ ... ∨ u.aₖ = v.bₖ`, matches when *any* alternative holds.
//! Several disjunctive groups between the same pair combine conjunctively
//! (CNF), so the conjunctive queries of the main paper are the special case
//! where every group has one alternative.
//!
//! ## How disjunction changes the safety condition
//!
//! To guard a stored tuple `t ∈ Υ_u` against future `v` data, it suffices to
//! extinguish **one** conjunctive group `g` (if no future `v` tuple satisfies
//! `g`, none matches the whole CNF). But extinguishing a *disjunctive* group
//! requires excluding **every** alternative: a punctuation on `v.b₁` alone
//! leaves matches through `v.b₂` possible. Hence the edge rule of the
//! disjunctive punctuation graph (single-attribute schemes):
//!
//! > there is an edge `u → v` iff some group `g` between `u` and `v` has
//! > *all* of its `v`-side attributes punctuatable.
//!
//! With that graph, Theorem 1's reachability condition and Theorem 2's
//! strong-connection condition carry over verbatim — the chained-purge
//! argument never looks inside the edge, only at which stream can guard
//! which. When every group is a singleton the graph coincides with
//! Definition 7's (property-tested in `tests/`).

use std::collections::{HashMap, HashSet};

use crate::error::{CoreError, CoreResult};
use crate::graph::DiGraph;
use crate::query::JoinPredicate;
use crate::schema::{Catalog, StreamId};
use crate::scheme::SchemeSet;

/// One disjunctive group: `alt₁ ∨ alt₂ ∨ ...`, all between one stream pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjunctiveGroup {
    alternatives: Vec<JoinPredicate>,
}

impl DisjunctiveGroup {
    /// Builds a group; all alternatives must connect the same stream pair
    /// and there must be at least one.
    pub fn new(alternatives: Vec<JoinPredicate>) -> CoreResult<Self> {
        let Some(first) = alternatives.first() else {
            return Err(CoreError::InvalidPredicate(
                "a disjunctive group needs at least one alternative".into(),
            ));
        };
        let pair = first.streams();
        if alternatives.iter().any(|p| p.streams() != pair) {
            return Err(CoreError::InvalidPredicate(
                "all alternatives of a disjunctive group must join the same stream pair".into(),
            ));
        }
        let mut alts = alternatives;
        alts.sort_unstable();
        alts.dedup();
        Ok(DisjunctiveGroup { alternatives: alts })
    }

    /// The alternatives (sorted, deduplicated).
    #[must_use]
    pub fn alternatives(&self) -> &[JoinPredicate] {
        &self.alternatives
    }

    /// The stream pair the group joins.
    #[must_use]
    pub fn streams(&self) -> (StreamId, StreamId) {
        self.alternatives[0].streams()
    }

    /// Whether the group is an ordinary conjunctive predicate (1 alternative).
    #[must_use]
    pub fn is_singleton(&self) -> bool {
        self.alternatives.len() == 1
    }
}

/// A continuous join query whose predicates are a conjunction of disjunctive
/// groups (CNF over equi-join alternatives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjunctiveCjq {
    catalog: Catalog,
    groups: Vec<DisjunctiveGroup>,
}

impl DisjunctiveCjq {
    /// Builds and validates a disjunctive query (connectivity over the group
    /// graph; endpoints resolve).
    pub fn new(catalog: Catalog, groups: Vec<DisjunctiveGroup>) -> CoreResult<Self> {
        if catalog.is_empty() {
            return Err(CoreError::InvalidQuery("query over zero streams".into()));
        }
        for g in &groups {
            for p in g.alternatives() {
                catalog.check_ref(p.left)?;
                catalog.check_ref(p.right)?;
            }
        }
        let q = DisjunctiveCjq { catalog, groups };
        if q.n_streams() > 1 && !q.is_connected() {
            return Err(CoreError::InvalidQuery(
                "join graph is not connected (cross products are not supported)".into(),
            ));
        }
        Ok(q)
    }

    /// The stream catalog.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The disjunctive groups.
    #[must_use]
    pub fn groups(&self) -> &[DisjunctiveGroup] {
        &self.groups
    }

    /// Number of streams.
    #[must_use]
    pub fn n_streams(&self) -> usize {
        self.catalog.len()
    }

    /// All stream ids.
    pub fn stream_ids(&self) -> impl Iterator<Item = StreamId> {
        (0..self.catalog.len()).map(StreamId)
    }

    fn is_connected(&self) -> bool {
        let n = self.n_streams();
        let mut adj: HashMap<StreamId, Vec<StreamId>> = HashMap::new();
        for g in &self.groups {
            let (a, b) = g.streams();
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let mut seen = HashSet::from([StreamId(0)]);
        let mut stack = vec![StreamId(0)];
        while let Some(s) = stack.pop() {
            for &t in adj.get(&s).map_or(&[][..], Vec::as_slice) {
                if seen.insert(t) {
                    stack.push(t);
                }
            }
        }
        seen.len() == n
    }
}

/// The disjunctive punctuation graph: edge `u → v` iff some group between
/// `u` and `v` has every `v`-side attribute punctuatable by a
/// single-attribute scheme.
#[must_use]
pub fn disjunctive_pg(query: &DisjunctiveCjq, schemes: &SchemeSet) -> DiGraph {
    let n = query.n_streams();
    let mut g = DiGraph::new(n);
    for group in query.groups() {
        let (a, b) = group.streams();
        // Edge a -> b: all b-side attrs punctuatable.
        let b_guarded = group.alternatives().iter().all(|p| {
            let e = p.endpoint_on(b).expect("touches b");
            schemes.simple_punctuatable(b, e.attr)
        });
        if b_guarded {
            g.add_edge(a.0, b.0);
        }
        let a_guarded = group.alternatives().iter().all(|p| {
            let e = p.endpoint_on(a).expect("touches a");
            schemes.simple_punctuatable(a, e.attr)
        });
        if a_guarded {
            g.add_edge(b.0, a.0);
        }
    }
    g
}

/// Purgeability of one join state (Theorem 1 lifted to disjunction):
/// `stream` reaches every other vertex in the disjunctive punctuation graph.
#[must_use]
pub fn stream_purgeable(query: &DisjunctiveCjq, schemes: &SchemeSet, stream: StreamId) -> bool {
    let g = disjunctive_pg(query, schemes);
    stream.0 < g.n() && g.reachable_from(stream.0).len() == g.n()
}

/// Safety of the disjunctive query (Theorem 2 lifted): the disjunctive
/// punctuation graph is strongly connected.
///
/// Restriction: like §4.1, this check covers single-attribute schemes;
/// multi-attribute schemes are ignored here (a conservative answer —
/// extending Definition 8's hyper edges to disjunction is future work on
/// top of future work).
#[must_use]
pub fn is_query_safe(query: &DisjunctiveCjq, schemes: &SchemeSet) -> bool {
    disjunctive_pg(query, schemes).is_strongly_connected()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::StreamSchema;
    use crate::scheme::PunctuationScheme;

    /// Two streams joined by `a.x = b.x ∨ a.y = b.y`.
    fn or_query() -> DisjunctiveCjq {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("a", ["x", "y"]).unwrap());
        cat.add_stream(StreamSchema::new("b", ["x", "y"]).unwrap());
        let group = DisjunctiveGroup::new(vec![
            JoinPredicate::between(0, 0, 1, 0).unwrap(),
            JoinPredicate::between(0, 1, 1, 1).unwrap(),
        ])
        .unwrap();
        DisjunctiveCjq::new(cat, vec![group]).unwrap()
    }

    #[test]
    fn group_validation() {
        assert!(DisjunctiveGroup::new(vec![]).is_err());
        // Alternatives across different pairs are rejected.
        let e = DisjunctiveGroup::new(vec![
            JoinPredicate::between(0, 0, 1, 0).unwrap(),
            JoinPredicate::between(0, 0, 2, 0).unwrap(),
        ]);
        assert!(e.is_err());
        // Duplicates collapse.
        let g = DisjunctiveGroup::new(vec![
            JoinPredicate::between(0, 0, 1, 0).unwrap(),
            JoinPredicate::between(0, 0, 1, 0).unwrap(),
        ])
        .unwrap();
        assert!(g.is_singleton());
    }

    #[test]
    fn one_guarded_attribute_is_not_enough() {
        // Punctuations on b.x only: matches via b.y stay possible, so a's
        // state cannot be guarded — no edge a -> b.
        let q = or_query();
        let r = SchemeSet::from_schemes([PunctuationScheme::on(1, &[0]).unwrap()]);
        let g = disjunctive_pg(&q, &r);
        assert!(!g.has_edge(0, 1));
        assert!(!is_query_safe(&q, &r));
        assert!(!stream_purgeable(&q, &r, StreamId(0)));
    }

    #[test]
    fn all_alternatives_guarded_creates_the_edge() {
        let q = or_query();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(1, &[0]).unwrap(), // b.x
            PunctuationScheme::on(1, &[1]).unwrap(), // b.y
        ]);
        let g = disjunctive_pg(&q, &r);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0), "a's side is unguarded");
        assert!(stream_purgeable(&q, &r, StreamId(0)));
        assert!(!stream_purgeable(&q, &r, StreamId(1)));
        assert!(!is_query_safe(&q, &r));

        // Guard both directions: safe.
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(1, &[0]).unwrap(),
            PunctuationScheme::on(1, &[1]).unwrap(),
            PunctuationScheme::on(0, &[0]).unwrap(),
            PunctuationScheme::on(0, &[1]).unwrap(),
        ]);
        assert!(is_query_safe(&q, &r));
    }

    #[test]
    fn singleton_groups_match_the_conjunctive_pg() {
        // A 3-stream path with singleton groups must agree with the
        // Definition 7 graph of the equivalent conjunctive query.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["C", "A"]).unwrap());
        let preds = vec![
            JoinPredicate::between(0, 1, 1, 0).unwrap(),
            JoinPredicate::between(1, 1, 2, 0).unwrap(),
        ];
        let groups: Vec<DisjunctiveGroup> = preds
            .iter()
            .map(|p| DisjunctiveGroup::new(vec![*p]).unwrap())
            .collect();
        let dq = DisjunctiveCjq::new(cat.clone(), groups).unwrap();
        let cq = crate::query::Cjq::new(cat, preds).unwrap();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(1, &[0]).unwrap(),
            PunctuationScheme::on(2, &[0]).unwrap(),
        ]);
        let dg = disjunctive_pg(&dq, &r);
        let cg = crate::pg::PunctuationGraph::of_query(&cq, &r);
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(
                    dg.has_edge(u, v),
                    cg.has_edge(StreamId(u), StreamId(v)),
                    "edge {u}->{v}"
                );
            }
        }
        assert_eq!(is_query_safe(&dq, &r), cg.is_strongly_connected());
    }

    #[test]
    fn multiple_groups_between_a_pair_one_guarded_group_suffices() {
        // (a.x = b.x ∨ a.y = b.y) ∧ (a.z = b.z): guarding the singleton
        // group {z} alone extinguishes all matches.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("a", ["x", "y", "z"]).unwrap());
        cat.add_stream(StreamSchema::new("b", ["x", "y", "z"]).unwrap());
        let or_group = DisjunctiveGroup::new(vec![
            JoinPredicate::between(0, 0, 1, 0).unwrap(),
            JoinPredicate::between(0, 1, 1, 1).unwrap(),
        ])
        .unwrap();
        let z_group =
            DisjunctiveGroup::new(vec![JoinPredicate::between(0, 2, 1, 2).unwrap()]).unwrap();
        let q = DisjunctiveCjq::new(cat, vec![or_group, z_group]).unwrap();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(1, &[2]).unwrap(), // b.z
            PunctuationScheme::on(0, &[2]).unwrap(), // a.z
        ]);
        assert!(is_query_safe(&q, &r));
    }

    #[test]
    fn query_validation() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("a", ["x"]).unwrap());
        cat.add_stream(StreamSchema::new("b", ["x"]).unwrap());
        cat.add_stream(StreamSchema::new("c", ["x"]).unwrap());
        // Disconnected.
        let g = DisjunctiveGroup::new(vec![JoinPredicate::between(0, 0, 1, 0).unwrap()]).unwrap();
        assert!(DisjunctiveCjq::new(cat.clone(), vec![g.clone()]).is_err());
        // Out-of-range attribute.
        let bad = DisjunctiveGroup::new(vec![JoinPredicate::between(0, 7, 1, 0).unwrap()]).unwrap();
        assert!(DisjunctiveCjq::new(cat, vec![bad, g]).is_err());
    }
}
