//! Small directed-graph utilities used by the punctuation-graph algorithms:
//! reachability, Tarjan strongly-connected components, and condensation.
//!
//! Nodes are dense `usize` indices; edges are deduplicated adjacency lists.

use std::collections::HashSet;

/// A simple directed graph over nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    adj: Vec<Vec<usize>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Number of (deduplicated) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Adds edge `u -> v` (idempotent). Self-loops are ignored: they never
    /// affect reachability or strong connectivity.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n() && v < self.n(), "edge endpoint out of range");
        if u != v && !self.adj[u].contains(&v) {
            self.adj[u].push(v);
        }
    }

    /// Whether edge `u -> v` is present.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Successors of `u`.
    #[must_use]
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// All edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// The set of nodes reachable from `start` (including `start` itself).
    #[must_use]
    pub fn reachable_from(&self, start: usize) -> HashSet<usize> {
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Whether every node reaches every other node.
    ///
    /// Uses the standard two-pass check: the graph is strongly connected iff
    /// node 0 reaches all nodes in the graph and in its reverse.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        if self.reachable_from(0).len() != n {
            return false;
        }
        self.reversed().reachable_from(0).len() == n
    }

    /// The reverse graph (all edges flipped).
    #[must_use]
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::new(self.n());
        for (u, v) in self.edges() {
            g.add_edge(v, u);
        }
        g
    }

    /// Tarjan's strongly-connected components. Components are returned in
    /// reverse topological order (a component appears before the components
    /// that can reach it); each component lists its member nodes.
    #[must_use]
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        Tarjan::new(self).run()
    }

    /// Condensation: maps each node to its SCC index and returns the acyclic
    /// component graph. SCC indices follow [`DiGraph::sccs`] order.
    #[must_use]
    pub fn condensation(&self) -> (Vec<usize>, DiGraph) {
        let sccs = self.sccs();
        let mut comp_of = vec![0usize; self.n()];
        for (ci, members) in sccs.iter().enumerate() {
            for &m in members {
                comp_of[m] = ci;
            }
        }
        let mut g = DiGraph::new(sccs.len());
        for (u, v) in self.edges() {
            if comp_of[u] != comp_of[v] {
                g.add_edge(comp_of[u], comp_of[v]);
            }
        }
        (comp_of, g)
    }
}

/// Iterative Tarjan SCC (no recursion, safe for deep graphs).
struct Tarjan<'g> {
    g: &'g DiGraph,
    index: Vec<Option<usize>>,
    lowlink: Vec<usize>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: usize,
    out: Vec<Vec<usize>>,
}

impl<'g> Tarjan<'g> {
    fn new(g: &'g DiGraph) -> Self {
        let n = g.n();
        Tarjan {
            g,
            index: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            out: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Vec<usize>> {
        for v in 0..self.g.n() {
            if self.index[v].is_none() {
                self.visit(v);
            }
        }
        self.out
    }

    fn visit(&mut self, root: usize) {
        // Explicit DFS frames: (node, next successor position).
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        self.open(root);
        while let Some(&mut (v, ref mut i)) = frames.last_mut() {
            if let Some(&w) = self.g.successors(v).get(*i) {
                *i += 1;
                if self.index[w].is_none() {
                    self.open(w);
                    frames.push((w, 0));
                } else if self.on_stack[w] {
                    self.lowlink[v] = self.lowlink[v].min(self.index[w].unwrap());
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                }
                if self.lowlink[v] == self.index[v].unwrap() {
                    let mut comp = Vec::new();
                    loop {
                        let w = self.stack.pop().expect("scc stack underflow");
                        self.on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    self.out.push(comp);
                }
            }
        }
    }

    fn open(&mut self, v: usize) {
        self.index[v] = Some(self.next_index);
        self.lowlink[v] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn edges_dedup_and_ignore_self_loops() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn reachability() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let r = g.reachable_from(0);
        assert!(r.contains(&0) && r.contains(&1) && r.contains(&2));
        assert!(!r.contains(&3));
        assert_eq!(g.reachable_from(3).len(), 1);
    }

    #[test]
    fn strong_connectivity() {
        assert!(cycle(5).is_strongly_connected());
        assert!(DiGraph::new(1).is_strongly_connected());
        assert!(DiGraph::new(0).is_strongly_connected());
        let mut path = DiGraph::new(3);
        path.add_edge(0, 1);
        path.add_edge(1, 2);
        assert!(!path.is_strongly_connected());
        assert!(!DiGraph::new(2).is_strongly_connected());
    }

    #[test]
    fn sccs_of_two_cycles_and_bridge() {
        // 0 <-> 1, 2 <-> 3, bridge 1 -> 2.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        g.add_edge(1, 2);
        let mut sccs = g.sccs();
        sccs.sort();
        assert_eq!(sccs, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn sccs_singletons_on_dag() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 3);
        // Reverse topological order: sink first.
        assert_eq!(sccs[0], vec![2]);
        assert_eq!(sccs[2], vec![0]);
    }

    #[test]
    fn condensation_collapses_components() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 2);
        let (comp_of, cg) = g.condensation();
        assert_eq!(comp_of[0], comp_of[1]);
        assert_eq!(comp_of[2], comp_of[3]);
        assert_ne!(comp_of[0], comp_of[2]);
        assert_eq!(cg.n(), 2);
        assert_eq!(cg.edge_count(), 1);
        assert!(cg.has_edge(comp_of[0], comp_of[2]));
    }

    #[test]
    fn large_cycle_does_not_overflow_stack() {
        // Iterative Tarjan must handle deep graphs.
        let g = cycle(200_000);
        assert_eq!(g.sccs().len(), 1);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn reversed_flips_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        let r = g.reversed();
        assert!(r.has_edge(1, 0));
        assert!(!r.has_edge(0, 1));
    }
}
