//! Chained purge strategy (paper §3.2.1, generalized in §4.2), reified as a
//! *purge recipe* the runtime can execute.
//!
//! For a purgeable stream `S` of an operator, Theorem 1/3's proof walks a
//! directed spanning structure of the (generalized) punctuation graph rooted
//! at `S`: each reached stream `S_i` contributes a step "punctuations from
//! `S_i` (instances of a specific scheme) must cover the values that the
//! already-guarded chain can join with". A [`PurgeRecipe`] records those steps
//! in dependency order together with *value bindings* — for each punctuatable
//! attribute of the step's scheme, which earlier stream (or the root tuple
//! itself) supplies the values that must be punctuated.

use crate::gpg::{GeneralizedPunctuationGraph, ReachStep};
use crate::query::Cjq;
use crate::schema::{AttrId, StreamId};
use crate::scheme::{PunctuationScheme, SchemeSet};

/// Where the values for one punctuatable attribute of a purge step come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueBinding {
    /// The punctuatable attribute on the step's target stream.
    pub target_attr: AttrId,
    /// The stream supplying the values: the recipe root or an earlier step's
    /// target (its joinable-tuple set `T_t[Υ]`).
    pub source: StreamId,
    /// The attribute on `source` whose (joinable) values must be punctuated
    /// on the target (the two sides of the equi-join predicate).
    pub source_attr: AttrId,
}

/// One step of the chained purge strategy: "to guard the chain against future
/// `target` data, punctuations instantiating `scheme` must cover the value
/// combinations described by `bindings`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PurgeStep {
    /// The stream whose future arrivals this step guards against.
    pub target: StreamId,
    /// The punctuation scheme whose instances provide the guard.
    pub scheme: PunctuationScheme,
    /// One binding per punctuatable attribute of `scheme`, in scheme order.
    pub bindings: Vec<ValueBinding>,
}

/// A complete purge recipe for tuples rooted at `roots` within one operator.
///
/// For a raw input stream `roots` is a singleton. For an operator in a plan
/// tree whose input port carries composite tuples (outputs of a child join),
/// `roots` is the set of raw streams the port spans: all of a stored
/// composite's values are available as chaining sources at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PurgeRecipe {
    /// The streams whose (possibly composite) join state the recipe purges.
    pub roots: Vec<StreamId>,
    /// Steps in dependency order: every binding's `source` is either one of
    /// `roots` or the target of an earlier step.
    pub steps: Vec<PurgeStep>,
}

impl PurgeRecipe {
    /// The distinct schemes the recipe relies on.
    #[must_use]
    pub fn required_schemes(&self) -> Vec<&PunctuationScheme> {
        let mut out: Vec<&PunctuationScheme> = Vec::new();
        for step in &self.steps {
            if !out.contains(&&step.scheme) {
                out.push(&step.scheme);
            }
        }
        out
    }

    /// Human-readable rendering using catalog names (for reports/examples).
    #[must_use]
    pub fn explain(&self, query: &Cjq) -> String {
        let cat = query.catalog();
        let name = |s: StreamId| {
            cat.schema(s)
                .map_or_else(|| s.to_string(), |sc| sc.name().to_owned())
        };
        let attr = |s: StreamId, a: AttrId| {
            cat.schema(s)
                .and_then(|sc| sc.attr_name(a))
                .map_or_else(|| format!("#{}", a.0), str::to_owned)
        };
        let roots: Vec<String> = self.roots.iter().map(|&s| name(s)).collect();
        let mut out = format!("purge recipe for tuples of {}:\n", roots.join("+"));
        for (i, step) in self.steps.iter().enumerate() {
            let covers: Vec<String> = step
                .bindings
                .iter()
                .map(|b| {
                    format!(
                        "{}.{} <- {}.{}",
                        name(step.target),
                        attr(step.target, b.target_attr),
                        name(b.source),
                        attr(b.source, b.source_attr)
                    )
                })
                .collect();
            out.push_str(&format!(
                "  step {}: punctuations from {} covering [{}]\n",
                i + 1,
                name(step.target),
                covers.join(", ")
            ));
        }
        out
    }
}

/// Derives the purge recipe for `root` in the operator over `streams`, or
/// `None` if `root`'s join state is not purgeable under `ℜ` (Theorem 1/3).
#[must_use]
pub fn derive_recipe(
    query: &Cjq,
    schemes: &SchemeSet,
    streams: &[StreamId],
    root: StreamId,
) -> Option<PurgeRecipe> {
    derive_port_recipe(query, schemes, streams, &[root])
}

/// Derives the purge recipe for an input *port* spanning `roots` within the
/// operator over `streams` (used by plan-tree operators whose inputs are
/// child-join outputs), or `None` if such composite state is not purgeable.
#[must_use]
pub fn derive_port_recipe(
    query: &Cjq,
    schemes: &SchemeSet,
    streams: &[StreamId],
    roots: &[StreamId],
) -> Option<PurgeRecipe> {
    let gpg = GeneralizedPunctuationGraph::over(query, schemes, streams);
    let mut roots: Vec<StreamId> = roots.to_vec();
    roots.sort_unstable();
    roots.dedup();
    if roots.is_empty() {
        return None;
    }
    for r in &roots {
        gpg.streams().binary_search(r).ok()?;
    }
    let trace = gpg.reach_trace_from_set(&roots);
    if trace.len() + roots.len() != gpg.streams().len() {
        return None; // the port does not reach every other input
    }
    let steps = trace
        .iter()
        .map(|step| match step {
            ReachStep::Plain {
                added,
                from,
                reason,
            } => {
                // The plain edge was licensed by a single-attribute scheme on
                // `added` covering the predicate's endpoint.
                let scheme = schemes
                    .for_stream(*added)
                    .find(|s| s.arity() == 1 && s.is_punctuatable(reason.punctuatable_on.attr))
                    .expect("plain edge implies such a scheme")
                    .clone();
                let source_attr = reason
                    .predicate
                    .endpoint_on(*from)
                    .expect("edge predicate touches `from`")
                    .attr;
                PurgeStep {
                    target: *added,
                    scheme,
                    bindings: vec![ValueBinding {
                        target_attr: reason.punctuatable_on.attr,
                        source: *from,
                        source_attr,
                    }],
                }
            }
            ReachStep::Hyper {
                added,
                edge,
                chosen,
            } => {
                let hyper = &gpg.hyper_edges()[*edge];
                let bindings = chosen
                    .iter()
                    .map(|&(target_attr, partner)| {
                        let source_attr = query
                            .predicates_on(*added)
                            .find(|p| {
                                p.endpoint_on(*added).map(|r| r.attr) == Some(target_attr)
                                    && p.endpoint_opposite(*added).map(|r| r.stream)
                                        == Some(partner)
                            })
                            .and_then(|p| p.endpoint_opposite(*added))
                            .expect("hyper requirement implies such a predicate")
                            .attr;
                        ValueBinding {
                            target_attr,
                            source: partner,
                            source_attr,
                        }
                    })
                    .collect();
                PurgeStep {
                    target: *added,
                    scheme: hyper.scheme.clone(),
                    bindings,
                }
            }
        })
        .collect();
    Some(PurgeRecipe { roots, steps })
}

/// Lag-aware variant of [`derive_port_recipe`]: when several punctuation
/// schemes could guard a step, prefer the cheapest (lowest-lag) usable one.
///
/// A stored tuple's residency is governed by the *slowest* guard along its
/// recipe, so the derivation greedily grows the reached set by the
/// lowest-weight usable edge (a Prim-style minimum-bottleneck strategy;
/// exact on plain edges, heuristic across hyper edges). `weights[i]` is the
/// expected punctuation lag of `schemes.schemes()[i]` — the §5.2 "which
/// alternative punctuation schemes to use" knob.
///
/// With uniform weights this produces a recipe equivalent (up to tie-breaks)
/// to [`derive_port_recipe`]; it returns `None` in exactly the same cases.
///
/// # Panics
/// Panics if `weights.len() != schemes.len()`.
#[must_use]
pub fn derive_port_recipe_weighted(
    query: &Cjq,
    schemes: &SchemeSet,
    streams: &[StreamId],
    roots: &[StreamId],
    weights: &[f64],
) -> Option<PurgeRecipe> {
    assert_eq!(weights.len(), schemes.len(), "one weight per scheme");
    let gpg = GeneralizedPunctuationGraph::over(query, schemes, streams);
    let mut roots: Vec<StreamId> = roots.to_vec();
    roots.sort_unstable();
    roots.dedup();
    if roots.is_empty() {
        return None;
    }
    for r in &roots {
        gpg.streams().binary_search(r).ok()?;
    }
    let scheme_weight = |s: &PunctuationScheme| {
        weights[schemes
            .schemes()
            .iter()
            .position(|x| x == s)
            .expect("scheme from the registered set")]
    };

    let mut reached: Vec<StreamId> = roots.clone();
    let mut steps: Vec<PurgeStep> = Vec::new();
    while reached.len() < gpg.streams().len() {
        // Collect every usable step and keep the cheapest.
        let mut best: Option<(f64, PurgeStep)> = None;
        let mut consider = |w: f64, step: PurgeStep| match &best {
            Some((bw, bstep)) if *bw < w || (*bw == w && bstep.target <= step.target) => {}
            _ => best = Some((w, step)),
        };
        // Plain edges: predicate between reached `u` and unreached `v` whose
        // v-side attribute is punctuatable by a single-attribute scheme.
        for p in query.predicates() {
            for (u_ref, v_ref) in [(p.left, p.right), (p.right, p.left)] {
                if !reached.contains(&u_ref.stream)
                    || reached.contains(&v_ref.stream)
                    || gpg.streams().binary_search(&v_ref.stream).is_err()
                {
                    continue;
                }
                for scheme in schemes.for_stream(v_ref.stream) {
                    if scheme.arity() == 1 && scheme.is_punctuatable(v_ref.attr) {
                        consider(
                            scheme_weight(scheme),
                            PurgeStep {
                                target: v_ref.stream,
                                scheme: scheme.clone(),
                                bindings: vec![ValueBinding {
                                    target_attr: v_ref.attr,
                                    source: u_ref.stream,
                                    source_attr: u_ref.attr,
                                }],
                            },
                        );
                    }
                }
            }
        }
        // Hyper edges whose every requirement has a reached candidate.
        for edge in gpg.hyper_edges() {
            if reached.contains(&edge.target) {
                continue;
            }
            let chosen: Option<Vec<(crate::schema::AttrId, StreamId)>> = edge
                .requirements
                .iter()
                .map(|req| {
                    req.candidates
                        .iter()
                        .find(|c| reached.contains(c))
                        .map(|&p| (req.attr, p))
                })
                .collect();
            let Some(chosen) = chosen else { continue };
            let bindings = chosen
                .iter()
                .map(|&(target_attr, partner)| {
                    let source_attr = query
                        .predicates_on(edge.target)
                        .find(|p| {
                            p.endpoint_on(edge.target).map(|r| r.attr) == Some(target_attr)
                                && p.endpoint_opposite(edge.target).map(|r| r.stream)
                                    == Some(partner)
                        })
                        .and_then(|p| p.endpoint_opposite(edge.target))
                        .expect("requirement implies predicate")
                        .attr;
                    ValueBinding {
                        target_attr,
                        source: partner,
                        source_attr,
                    }
                })
                .collect();
            consider(
                scheme_weight(&edge.scheme),
                PurgeStep {
                    target: edge.target,
                    scheme: edge.scheme.clone(),
                    bindings,
                },
            );
        }
        let (_, step) = best?; // no usable step left: not purgeable
        reached.push(step.target);
        steps.push(step);
    }
    Some(PurgeRecipe { roots, steps })
}

/// Derives recipes for every purgeable stream of the operator; streams whose
/// state is not purgeable are omitted.
#[must_use]
pub fn derive_all(query: &Cjq, schemes: &SchemeSet, streams: &[StreamId]) -> Vec<PurgeRecipe> {
    streams
        .iter()
        .filter_map(|&s| derive_recipe(query, schemes, streams, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinPredicate;
    use crate::schema::{Catalog, StreamSchema};

    /// Figure 3: S1(A,B), S2(B,C), S3(C,A); S1.B=S2.B, S2.C=S3.C; schemes on
    /// S2.B and S3.C (what the §3.2 walkthrough needs to purge S1's state).
    fn fig3() -> (Cjq, SchemeSet) {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["C", "A"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 1, 1, 0).unwrap(), // S1.B = S2.B
                JoinPredicate::between(1, 1, 2, 0).unwrap(), // S2.C = S3.C
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([
            crate::scheme::PunctuationScheme::on(1, &[0]).unwrap(), // S2.B
            crate::scheme::PunctuationScheme::on(2, &[0]).unwrap(), // S3.C
        ]);
        (q, r)
    }

    #[test]
    fn fig3_recipe_for_s1_matches_the_paper_walkthrough() {
        // §3.2: to purge t(a1,b1) from Υ_S1 we need P_t[S2] = {(b1,*)} and
        // P_t[S3] = {(c,*) for each joinable c in T_t[Υ_S2]}.
        let (q, r) = fig3();
        let streams: Vec<StreamId> = q.stream_ids().collect();
        let recipe = derive_recipe(&q, &r, &streams, StreamId(0)).unwrap();
        assert_eq!(recipe.roots, vec![StreamId(0)]);
        assert_eq!(recipe.steps.len(), 2);

        // Step 1: punctuations from S2 on B, values from t itself (S1.B).
        let s1 = &recipe.steps[0];
        assert_eq!(s1.target, StreamId(1));
        assert_eq!(
            s1.bindings,
            vec![ValueBinding {
                target_attr: AttrId(0),
                source: StreamId(0),
                source_attr: AttrId(1),
            }]
        );
        // Step 2: punctuations from S3 on C, values from S2's joinable set.
        let s2 = &recipe.steps[1];
        assert_eq!(s2.target, StreamId(2));
        assert_eq!(
            s2.bindings,
            vec![ValueBinding {
                target_attr: AttrId(0),
                source: StreamId(1),
                source_attr: AttrId(1),
            }]
        );
    }

    #[test]
    fn fig3_s3_not_purgeable_without_reverse_schemes() {
        let (q, r) = fig3();
        let streams: Vec<StreamId> = q.stream_ids().collect();
        assert!(derive_recipe(&q, &r, &streams, StreamId(2)).is_none());
        // Only S1's state has a recipe (S2 needs punctuations from S1.B or
        // S3 direction; S3 -> S2 edge exists but S2 -> S1 does not... S2's
        // recipe needs to reach S1, which requires a scheme on S1).
        let all = derive_all(&q, &r, &streams);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].roots, vec![StreamId(0)]);
    }

    #[test]
    fn recipe_dependency_order_invariant() {
        let (q, r) = crate::fixtures::fig8();
        let streams: Vec<StreamId> = q.stream_ids().collect();
        for root in q.stream_ids() {
            let recipe = derive_recipe(&q, &r, &streams, root)
                .unwrap_or_else(|| panic!("{root} purgeable in Fig. 8"));
            let mut known = recipe.roots.clone();
            for step in &recipe.steps {
                for b in &step.bindings {
                    assert!(
                        known.contains(&b.source),
                        "binding source {} used before being guarded",
                        b.source
                    );
                }
                known.push(step.target);
            }
            // Every non-root stream appears exactly once as a target.
            assert_eq!(known.len(), streams.len());
        }
    }

    #[test]
    fn fig8_s1_recipe_uses_the_multi_attribute_scheme() {
        let (q, r) = crate::fixtures::fig8();
        let streams: Vec<StreamId> = q.stream_ids().collect();
        let recipe = derive_recipe(&q, &r, &streams, StreamId(0)).unwrap();
        // §4.2 walkthrough: guard S2 via (b1,*), then S3 via (a1,c)-pairs
        // from the multi-attribute scheme S3(+,+).
        let last = recipe.steps.last().unwrap();
        assert_eq!(last.target, StreamId(2));
        assert_eq!(last.scheme.arity(), 2);
        assert_eq!(last.bindings.len(), 2);
        // A values come from S1 (the root tuple), C values from S2's chain.
        assert_eq!(last.bindings[0].source, StreamId(0));
        assert_eq!(last.bindings[1].source, StreamId(1));
        let schemes = recipe.required_schemes();
        assert!(schemes.iter().any(|s| s.arity() == 2));
    }

    #[test]
    fn weighted_matches_unweighted_purgeability() {
        for (q, r) in [
            crate::fixtures::fig3(),
            crate::fixtures::fig5(),
            crate::fixtures::fig8(),
        ] {
            let streams: Vec<StreamId> = q.stream_ids().collect();
            let uniform = vec![1.0; r.len()];
            for s in q.stream_ids() {
                let plain = derive_recipe(&q, &r, &streams, s);
                let weighted = derive_port_recipe_weighted(&q, &r, &streams, &[s], &uniform);
                assert_eq!(plain.is_some(), weighted.is_some(), "stream {s}");
                if let (Some(a), Some(b)) = (plain, weighted) {
                    let mut ta: Vec<StreamId> = a.steps.iter().map(|st| st.target).collect();
                    let mut tb: Vec<StreamId> = b.steps.iter().map(|st| st.target).collect();
                    ta.sort_unstable();
                    tb.sort_unstable();
                    assert_eq!(ta, tb, "same streams guarded");
                }
            }
        }
    }

    #[test]
    fn weighted_prefers_cheap_schemes() {
        // Two parallel predicates between S1 and S2 on different attributes,
        // each punctuatable on the S2 side: the recipe must pick the cheap
        // scheme.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "B"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 0, 1, 0).unwrap(),
                JoinPredicate::between(0, 1, 1, 1).unwrap(),
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([
            crate::scheme::PunctuationScheme::on(1, &[0]).unwrap(), // S2.A
            crate::scheme::PunctuationScheme::on(1, &[1]).unwrap(), // S2.B
        ]);
        let streams: Vec<StreamId> = q.stream_ids().collect();
        // S2.B is fast: the recipe must guard via attribute B.
        let recipe =
            derive_port_recipe_weighted(&q, &r, &streams, &[StreamId(0)], &[10.0, 1.0]).unwrap();
        assert_eq!(recipe.steps.len(), 1);
        assert_eq!(recipe.steps[0].scheme, r.schemes()[1]);
        // And the other way around.
        let recipe =
            derive_port_recipe_weighted(&q, &r, &streams, &[StreamId(0)], &[1.0, 10.0]).unwrap();
        assert_eq!(recipe.steps[0].scheme, r.schemes()[0]);
    }

    #[test]
    fn weighted_unpurgeable_returns_none() {
        let (q, r) = crate::fixtures::fig3();
        let streams: Vec<StreamId> = q.stream_ids().collect();
        let uniform = vec![1.0; r.len()];
        assert!(derive_port_recipe_weighted(&q, &r, &streams, &[StreamId(2)], &uniform).is_none());
        assert!(derive_port_recipe_weighted(&q, &r, &streams, &[], &uniform).is_none());
    }

    #[test]
    fn explain_renders_names() {
        let (q, r) = fig3();
        let streams: Vec<StreamId> = q.stream_ids().collect();
        let recipe = derive_recipe(&q, &r, &streams, StreamId(0)).unwrap();
        let text = recipe.explain(&q);
        assert!(text.contains("purge recipe for tuples of S1"));
        assert!(text.contains("S2.B <- S1.B"));
        assert!(text.contains("S3.C <- S2.C"));
    }

    #[test]
    fn unknown_root_yields_none() {
        let (q, r) = fig3();
        let streams: Vec<StreamId> = q.stream_ids().collect();
        assert!(derive_recipe(&q, &r, &streams, StreamId(9)).is_none());
    }
}
