//! Stream schemas and attribute addressing.
//!
//! Each data stream `S_i` has a relational schema `(A_1^i, ..., A_{n_i}^i)`
//! (paper §2.2). Streams and attributes are addressed by dense indices so the
//! graph algorithms can use plain vectors.

use std::fmt;

use crate::error::{CoreError, CoreResult};

/// Index of a stream within a [`Catalog`] (the paper's `S_i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub usize);

/// Index of an attribute within one stream's schema (the paper's `A_j^i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

/// A fully qualified attribute reference `S_i.A_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// The stream owning the attribute.
    pub stream: StreamId,
    /// The attribute position within that stream's schema.
    pub attr: AttrId,
}

impl AttrRef {
    /// Convenience constructor from raw indices.
    #[must_use]
    pub fn new(stream: usize, attr: usize) -> Self {
        AttrRef {
            stream: StreamId(stream),
            attr: AttrId(attr),
        }
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.#{}", self.stream, self.attr.0)
    }
}

/// The relational schema of one data stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamSchema {
    name: String,
    attrs: Vec<String>,
}

impl StreamSchema {
    /// Creates a schema with the given stream name and attribute names.
    ///
    /// Attribute names must be unique within the stream.
    pub fn new(
        name: impl Into<String>,
        attrs: impl IntoIterator<Item = impl Into<String>>,
    ) -> CoreResult<Self> {
        let name = name.into();
        let attrs: Vec<String> = attrs.into_iter().map(Into::into).collect();
        if attrs.is_empty() {
            return Err(CoreError::InvalidSchema {
                stream: name,
                reason: "a stream schema needs at least one attribute".into(),
            });
        }
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(CoreError::InvalidSchema {
                    stream: name,
                    reason: format!("duplicate attribute name `{a}`"),
                });
            }
        }
        Ok(StreamSchema { name, attrs })
    }

    /// The stream's name (informational; addressing uses [`StreamId`]).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes `n_i`.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Name of attribute `id`, if in range.
    #[must_use]
    pub fn attr_name(&self, id: AttrId) -> Option<&str> {
        self.attrs.get(id.0).map(String::as_str)
    }

    /// Looks up an attribute by name.
    #[must_use]
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a == name).map(AttrId)
    }

    /// Iterates over `(AttrId, name)` pairs.
    pub fn attrs(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i), a.as_str()))
    }
}

/// The set of stream schemas a query is defined over (the paper's `ℑ`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    streams: Vec<StreamSchema>,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a stream schema and returns its id.
    pub fn add_stream(&mut self, schema: StreamSchema) -> StreamId {
        let id = StreamId(self.streams.len());
        self.streams.push(schema);
        id
    }

    /// Number of registered streams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether the catalog has no streams.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// The schema of stream `id`, if registered.
    #[must_use]
    pub fn schema(&self, id: StreamId) -> Option<&StreamSchema> {
        self.streams.get(id.0)
    }

    /// Looks up a stream by name.
    #[must_use]
    pub fn stream_by_name(&self, name: &str) -> Option<StreamId> {
        self.streams
            .iter()
            .position(|s| s.name() == name)
            .map(StreamId)
    }

    /// Iterates over `(StreamId, schema)` pairs.
    pub fn streams(&self) -> impl Iterator<Item = (StreamId, &StreamSchema)> {
        self.streams
            .iter()
            .enumerate()
            .map(|(i, s)| (StreamId(i), s))
    }

    /// Resolves `stream.attr` names into an [`AttrRef`].
    pub fn resolve(&self, stream: &str, attr: &str) -> CoreResult<AttrRef> {
        let sid = self
            .stream_by_name(stream)
            .ok_or_else(|| CoreError::UnknownStream(stream.to_owned()))?;
        let schema = &self.streams[sid.0];
        let aid = schema
            .attr_by_name(attr)
            .ok_or_else(|| CoreError::UnknownAttribute {
                stream: stream.to_owned(),
                attr: attr.to_owned(),
            })?;
        Ok(AttrRef {
            stream: sid,
            attr: aid,
        })
    }

    /// Validates that `r` points to an existing stream/attribute.
    pub fn check_ref(&self, r: AttrRef) -> CoreResult<()> {
        let schema = self
            .schema(r.stream)
            .ok_or_else(|| CoreError::UnknownStream(format!("{}", r.stream)))?;
        if r.attr.0 >= schema.arity() {
            return Err(CoreError::UnknownAttribute {
                stream: schema.name().to_owned(),
                attr: format!("#{}", r.attr.0),
            });
        }
        Ok(())
    }

    /// Pretty-prints an attribute reference as `stream.attr`.
    #[must_use]
    pub fn display_ref(&self, r: AttrRef) -> String {
        match self.schema(r.stream) {
            Some(s) => match s.attr_name(r.attr) {
                Some(a) => format!("{}.{}", s.name(), a),
                None => format!("{}.#{}", s.name(), r.attr.0),
            },
            None => format!("{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> StreamSchema {
        StreamSchema::new("s", ["a", "b", "c"]).unwrap()
    }

    #[test]
    fn schema_rejects_duplicates_and_empty() {
        assert!(StreamSchema::new("s", ["a", "a"]).is_err());
        assert!(StreamSchema::new("s", Vec::<String>::new()).is_err());
    }

    #[test]
    fn schema_lookup() {
        let s = abc();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_by_name("b"), Some(AttrId(1)));
        assert_eq!(s.attr_by_name("z"), None);
        assert_eq!(s.attr_name(AttrId(2)), Some("c"));
        assert_eq!(s.attr_name(AttrId(9)), None);
        assert_eq!(s.attrs().count(), 3);
    }

    #[test]
    fn catalog_resolution() {
        let mut cat = Catalog::new();
        let item = cat.add_stream(
            StreamSchema::new("item", ["sellerid", "itemid", "name", "initialprice"]).unwrap(),
        );
        let bid =
            cat.add_stream(StreamSchema::new("bid", ["bidderid", "itemid", "increase"]).unwrap());
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.stream_by_name("bid"), Some(bid));
        let r = cat.resolve("item", "itemid").unwrap();
        assert_eq!(
            r,
            AttrRef {
                stream: item,
                attr: AttrId(1)
            }
        );
        assert!(cat.resolve("item", "nope").is_err());
        assert!(cat.resolve("nope", "itemid").is_err());
        assert_eq!(cat.display_ref(r), "item.itemid");
    }

    #[test]
    fn catalog_check_ref() {
        let mut cat = Catalog::new();
        let s = cat.add_stream(abc());
        assert!(cat
            .check_ref(AttrRef {
                stream: s,
                attr: AttrId(2)
            })
            .is_ok());
        assert!(cat
            .check_ref(AttrRef {
                stream: s,
                attr: AttrId(3)
            })
            .is_err());
        assert!(cat
            .check_ref(AttrRef {
                stream: StreamId(5),
                attr: AttrId(0)
            })
            .is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(StreamId(0).to_string(), "S1");
        assert_eq!(AttrRef::new(1, 2).to_string(), "S2.#2");
    }
}
