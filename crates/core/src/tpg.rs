//! The transformed punctuation graph (paper Definition 11, Theorem 5): a
//! polynomial-time safety check that avoids the per-origin reachability
//! fixpoints of the naive GPG procedure.
//!
//! The transformation iteratively condenses the punctuation graph:
//!
//! 1. find strongly connected components of the current (virtual-node) graph;
//! 2. merge each multi-node component into a *virtual node*;
//! 3. rebuild edges between (virtual) nodes:
//!    * **promotion** — any plain punctuation-graph edge between covered
//!      streams becomes an edge between their virtual nodes;
//!    * **virtual-edge construction** — add `X → Y` when some stream `s`
//!      covered by `Y` has a scheme whose punctuatable attributes are *all*
//!      join attributes of `s` towards streams covered by `X`;
//!
//! until the graph is one node (safe) or has no multi-node component left
//! (unsafe). At most `n - 1` merge rounds occur and each round is a linear
//! SCC pass plus an `O(|ℜ| · n)` edge rebuild, so the procedure is polynomial.
//!
//! Why the virtual-edge rule requires partners within `X` only (and not
//! `X ∪ Y`, a reading Definition 11's prose also admits): a partner inside
//! `Y` may be unreachable from an external origin until `s` itself is
//! reached, which is circular — allowing it would accept queries whose GPG is
//! not strongly connected. With the strict rule both directions of Theorem 5
//! hold (see the correctness sketch in DESIGN.md); the `proptest` suite
//! checks agreement with the Definition 9/10 fixpoint on random instances.

use std::collections::HashMap;

use crate::graph::DiGraph;
use crate::query::Cjq;
use crate::schema::StreamId;
use crate::scheme::SchemeSet;

/// One iteration snapshot of the transformation (for inspection/figures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgIteration {
    /// The partition of streams into (virtual) nodes at the start of the
    /// iteration; each node's streams are sorted.
    pub nodes: Vec<Vec<StreamId>>,
    /// Directed edges between node indices after promotion + virtual-edge
    /// construction.
    pub edges: Vec<(usize, usize)>,
}

/// Result of the Definition 11 transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformedPunctuationGraph {
    /// Final partition (one entry = the query is safe, per Theorem 5).
    pub nodes: Vec<Vec<StreamId>>,
    /// Number of merge rounds performed.
    pub rounds: usize,
    /// Per-round snapshots, in order. The last snapshot shows the graph that
    /// stopped the iteration (single node or no multi-node SCC).
    pub history: Vec<TpgIteration>,
}

/// A cut of the final (stuck) transformed punctuation graph explaining why a
/// stream's join state cannot be purged: every virtual node reachable from
/// the stream's node is on the `reachable` side, and — by construction of the
/// reachability closure — no promoted or virtual edge crosses from the
/// `reachable` side to the `blocked` side. Making the query safe requires a
/// punctuation scheme that adds a crossing edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TpgCut {
    /// Virtual nodes (each a sorted set of streams) reachable from the
    /// origin's node, origin included.
    pub reachable: Vec<Vec<StreamId>>,
    /// Virtual nodes no edge path reaches from the origin's node.
    pub blocked: Vec<Vec<StreamId>>,
}

impl TransformedPunctuationGraph {
    /// Theorem 5: the GPG is strongly connected iff the transformation ends
    /// in a single (virtual) node.
    #[must_use]
    pub fn is_single_node(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The last iteration snapshot: the (virtual-node) graph that stopped the
    /// transformation — a single node for safe queries, the stuck partition
    /// with its promoted/virtual edges otherwise.
    ///
    /// # Panics
    /// Never: the transformation always records at least one snapshot.
    #[must_use]
    pub fn final_snapshot(&self) -> &TpgIteration {
        self.history
            .last()
            .expect("at least one iteration snapshot")
    }

    /// The blocking cut for `origin` in the final snapshot: the side of the
    /// stuck graph its virtual node can reach versus the side it cannot.
    /// `None` when the transformation ended in a single node (safe) or
    /// `origin` is not in scope.
    #[must_use]
    pub fn blocking_cut(&self, origin: StreamId) -> Option<TpgCut> {
        if self.is_single_node() {
            return None;
        }
        let snap = self.final_snapshot();
        let start = snap.nodes.iter().position(|ss| ss.contains(&origin))?;
        let mut seen = vec![false; snap.nodes.len()];
        seen[start] = true;
        let mut frontier = vec![start];
        while let Some(n) = frontier.pop() {
            for &(from, to) in &snap.edges {
                if from == n && !seen[to] {
                    seen[to] = true;
                    frontier.push(to);
                }
            }
        }
        let (reachable, blocked): (Vec<_>, Vec<_>) =
            snap.nodes.iter().enumerate().partition(|&(i, _)| seen[i]);
        let strip = |side: Vec<(usize, &Vec<StreamId>)>| {
            side.into_iter().map(|(_, ss)| ss.clone()).collect()
        };
        Some(TpgCut {
            reachable: strip(reachable),
            blocked: strip(blocked),
        })
    }
}

/// Runs the Definition 11 transformation for the whole query.
#[must_use]
pub fn transform_query(query: &Cjq, schemes: &SchemeSet) -> TransformedPunctuationGraph {
    transform_over(query, schemes, &query.stream_ids().collect::<Vec<_>>())
}

/// Runs the Definition 11 transformation for the operator over `streams`.
#[must_use]
pub fn transform_over(
    query: &Cjq,
    schemes: &SchemeSet,
    streams: &[StreamId],
) -> TransformedPunctuationGraph {
    let mut scope: Vec<StreamId> = streams.to_vec();
    scope.sort_unstable();
    scope.dedup();
    let in_scope: HashMap<StreamId, ()> = scope.iter().map(|&s| (s, ())).collect();

    // Partition: each stream's current node index.
    let mut nodes: Vec<Vec<StreamId>> = scope.iter().map(|&s| vec![s]).collect();
    let mut history = Vec::new();
    let mut rounds = 0usize;

    loop {
        let node_of: HashMap<StreamId, usize> = nodes
            .iter()
            .enumerate()
            .flat_map(|(i, ss)| ss.iter().map(move |&s| (s, i)))
            .collect();
        let graph = build_edges(query, schemes, &in_scope, &nodes, &node_of);
        history.push(TpgIteration {
            nodes: nodes.clone(),
            edges: graph.edges().collect(),
        });

        if nodes.len() == 1 {
            break;
        }
        let sccs = graph.sccs();
        if sccs.len() == nodes.len() {
            break; // no multi-node component: transformation is stuck
        }
        // Merge: each SCC of virtual nodes becomes one new virtual node.
        nodes = sccs
            .into_iter()
            .map(|comp| {
                let mut streams: Vec<StreamId> =
                    comp.into_iter().flat_map(|ni| nodes[ni].clone()).collect();
                streams.sort_unstable();
                streams
            })
            .collect();
        nodes.sort();
        rounds += 1;
    }

    TransformedPunctuationGraph {
        nodes,
        rounds,
        history,
    }
}

/// Builds the iteration graph over the current virtual nodes.
fn build_edges(
    query: &Cjq,
    schemes: &SchemeSet,
    in_scope: &HashMap<StreamId, ()>,
    nodes: &[Vec<StreamId>],
    node_of: &HashMap<StreamId, usize>,
) -> DiGraph {
    let mut g = DiGraph::new(nodes.len());

    // (i) Directed-edge promotion: plain Definition 7 edges between streams,
    // lifted to their virtual nodes.
    for p in query.predicates() {
        let (Some(&nl), Some(&nr)) = (node_of.get(&p.left.stream), node_of.get(&p.right.stream))
        else {
            continue;
        };
        if nl != nr {
            if schemes.simple_punctuatable(p.left.stream, p.left.attr) {
                g.add_edge(nr, nl);
            }
            if schemes.simple_punctuatable(p.right.stream, p.right.attr) {
                g.add_edge(nl, nr);
            }
        }
    }

    // (ii) Virtual-edge construction: X -> node(s) when a scheme on `s` has
    // every punctuatable attribute joined to some stream covered by X.
    for (s, scheme) in scope_schemes(schemes, in_scope) {
        let ns = node_of[&s];
        // Node sets that can serve each punctuatable attribute.
        let mut per_attr_nodes: Vec<Vec<usize>> = Vec::with_capacity(scheme_arity(scheme));
        let mut usable = true;
        for &attr in scheme.punctuatable() {
            let mut ns_for_attr: Vec<usize> = query
                .partners_of(s, attr)
                .into_iter()
                .filter(|p| in_scope.contains_key(p))
                .map(|p| node_of[&p])
                .filter(|&n| n != ns)
                .collect();
            ns_for_attr.sort_unstable();
            ns_for_attr.dedup();
            if ns_for_attr.is_empty() {
                usable = false;
                break;
            }
            per_attr_nodes.push(ns_for_attr);
        }
        if !usable {
            continue;
        }
        // X must serve all attributes: intersect the per-attribute node sets.
        let mut candidates = per_attr_nodes[0].clone();
        for other in &per_attr_nodes[1..] {
            candidates.retain(|n| other.binary_search(n).is_ok());
        }
        for x in candidates {
            g.add_edge(x, ns);
        }
    }
    g
}

fn scope_schemes<'a>(
    schemes: &'a SchemeSet,
    in_scope: &'a HashMap<StreamId, ()>,
) -> impl Iterator<Item = (StreamId, &'a crate::scheme::PunctuationScheme)> {
    schemes
        .schemes()
        .iter()
        .filter(move |s| in_scope.contains_key(&s.stream))
        .map(|s| (s.stream, s))
}

fn scheme_arity(s: &crate::scheme::PunctuationScheme) -> usize {
    s.arity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpg::GeneralizedPunctuationGraph;
    use crate::query::JoinPredicate;
    use crate::schema::{Catalog, StreamSchema};
    use crate::scheme::PunctuationScheme;

    use crate::fixtures::fig8;

    #[test]
    fn figure_10_transformation() {
        // Round 1 merges {S1, S2} (plain 2-cycle); the virtual edge from the
        // merged node to S3 (scheme S3(+,+)) then closes the cycle; the
        // transformation ends in a single virtual node => safe.
        let (q, r) = fig8();
        let tpg = transform_query(&q, &r);
        assert!(tpg.is_single_node());
        assert_eq!(tpg.nodes, vec![vec![StreamId(0), StreamId(1), StreamId(2)]]);
        assert!(
            tpg.rounds >= 1 && tpg.rounds <= 2,
            "rounds = {}",
            tpg.rounds
        );
        // First snapshot: three singleton nodes.
        assert_eq!(tpg.history[0].nodes.len(), 3);
    }

    #[test]
    fn fig5_simple_cycle_merges_in_one_round() {
        let (q, r) = crate::fixtures::fig5();
        let tpg = transform_query(&q, &r);
        assert!(tpg.is_single_node());
        assert_eq!(tpg.rounds, 1);
    }

    #[test]
    fn unsafe_query_stops_with_multiple_nodes() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A"]).unwrap());
        let q = Cjq::new(cat, vec![JoinPredicate::between(0, 0, 1, 0).unwrap()]).unwrap();
        // Only one direction punctuatable: S2 -> ... wait, scheme on S1 gives
        // the single edge S2 -> S1; not strongly connected.
        let r = SchemeSet::from_schemes([PunctuationScheme::on(0, &[0]).unwrap()]);
        let tpg = transform_query(&q, &r);
        assert!(!tpg.is_single_node());
        assert_eq!(tpg.nodes.len(), 2);
        assert_eq!(tpg.rounds, 0);
    }

    #[test]
    fn partner_inside_target_node_does_not_license_virtual_edge() {
        // Regression guard for the unsound `X ∪ Y` reading: hyper edge
        // {S1, S3} -> S2 where S3 is in S2's would-be component must not fire
        // from S1's side alone.
        //
        // Streams: S1 -A- S2, S2 -B- S3, plus plain edges forming a 2-cycle
        // between S2 and S3 only. Scheme on S2 over (A, B): partner of A is
        // S1, partner of B is S3.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["B"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 0, 1, 0).unwrap(), // S1.A = S2.A
                JoinPredicate::between(1, 1, 2, 0).unwrap(), // S2.B = S3.B
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(1, &[0, 1]).unwrap(), // S2(A, B)
            PunctuationScheme::on(2, &[0]).unwrap(),    // S3.B simple
            // S2.B simple too, to form a 2-cycle S2 <-> S3.
            PunctuationScheme::on(1, &[1]).unwrap(),
        ]);
        // GPG ground truth: S1 reaches nothing via plain edges; hyper
        // {S1, S3} -> S2 needs S3 which S1 cannot reach => S1 not purgeable.
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        assert!(!gpg.reaches_all(StreamId(0)));
        assert!(!gpg.is_strongly_connected());
        // TPG must agree: after {S2, S3} merge, no edge {S2,S3} -> S1 exists
        // and the virtual edge S1 -> {S2,S3} requires partners of BOTH A and
        // B inside {S1}, which fails for B.
        let tpg = transform_query(&q, &r);
        assert!(!tpg.is_single_node());
    }

    #[test]
    fn virtual_edge_fires_after_sources_merge() {
        // 4-stream version of the Lemma-2 shape: multi-attribute scheme whose
        // partners sit in two nodes that merge in round 1.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "X"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["X", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["A", "B"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 1, 1, 0).unwrap(), // S1.X = S2.X
                JoinPredicate::between(0, 0, 2, 0).unwrap(), // S1.A = S3.A
                JoinPredicate::between(1, 1, 2, 1).unwrap(), // S2.B = S3.B
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(0, &[1]).unwrap(),    // S1.X
            PunctuationScheme::on(1, &[0]).unwrap(),    // S2.X  (2-cycle S1<->S2)
            PunctuationScheme::on(2, &[0, 1]).unwrap(), // S3(A, B)
            PunctuationScheme::on(0, &[0]).unwrap(),    // S1.A  (S3 -> S1 back-edge)
        ]);
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        assert!(gpg.is_strongly_connected());
        let tpg = transform_query(&q, &r);
        assert!(tpg.is_single_node());
        assert!(
            tpg.rounds >= 2,
            "needs a merge before the virtual edge fires"
        );
    }

    #[test]
    fn single_stream_is_trivially_single_node() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        let q = Cjq::new(cat, vec![]).unwrap();
        let tpg = transform_query(&q, &SchemeSet::new());
        assert!(tpg.is_single_node());
        assert_eq!(tpg.rounds, 0);
    }

    #[test]
    fn history_records_snapshots() {
        let (q, r) = fig8();
        let tpg = transform_query(&q, &r);
        assert!(!tpg.history.is_empty());
        assert_eq!(tpg.history[0].nodes.len(), 3);
        assert_eq!(tpg.history.last().unwrap().nodes.len(), 1);
    }
}
