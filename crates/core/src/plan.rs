//! Execution plans for continuous join queries and their safety (paper
//! Definitions 2–3, §4.1.2).
//!
//! A plan is a tree whose leaves are the query's input streams and whose
//! internal nodes are join operators of any arity ≥ 2 (binary joins, MJoins,
//! or a mix). A plan is *safe* iff every operator is purgeable (Definition 2);
//! an operator's purgeability is decided by the (generalized) punctuation
//! graph over the streams it spans (Corollaries 1–2; see DESIGN.md for why
//! the raw-stream graph over the operator's span is the right object).
//!
//! The same query can have safe and unsafe plans under one scheme set — the
//! paper's Figure 7 shows a binary tree that is unsafe while the single MJoin
//! is safe. Theorem 2/4 guarantee that whenever *any* safe plan exists, the
//! flat single-MJoin plan is safe too.

use std::fmt;

use crate::error::{CoreError, CoreResult};
use crate::query::Cjq;
use crate::safety::{self, SafetyReport};
use crate::schema::StreamId;
use crate::scheme::SchemeSet;

/// A node of an execution-plan tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Plan {
    /// A raw input stream.
    Leaf(StreamId),
    /// A join operator over ≥ 2 child plans.
    Join(Vec<Plan>),
}

impl Plan {
    /// A leaf node.
    #[must_use]
    pub fn leaf(stream: usize) -> Plan {
        Plan::Leaf(StreamId(stream))
    }

    /// A join node over the given children.
    #[must_use]
    pub fn join(children: Vec<Plan>) -> Plan {
        Plan::Join(children)
    }

    /// The flat single-MJoin plan over all of the query's streams.
    #[must_use]
    pub fn mjoin_all(query: &Cjq) -> Plan {
        Plan::Join(query.stream_ids().map(Plan::Leaf).collect())
    }

    /// A left-deep binary plan joining streams in the given order.
    ///
    /// `left_deep(&[a, b, c])` builds `((a ⋈ b) ⋈ c)`.
    #[must_use]
    pub fn left_deep(order: &[StreamId]) -> Plan {
        assert!(
            order.len() >= 2,
            "left-deep plan needs at least two streams"
        );
        let mut plan = Plan::Join(vec![Plan::Leaf(order[0]), Plan::Leaf(order[1])]);
        for &s in &order[2..] {
            plan = Plan::Join(vec![plan, Plan::Leaf(s)]);
        }
        plan
    }

    /// The streams this subtree spans, sorted ascending.
    #[must_use]
    pub fn span(&self) -> Vec<StreamId> {
        let mut out = Vec::new();
        self.collect_span(&mut out);
        out.sort_unstable();
        out
    }

    fn collect_span(&self, out: &mut Vec<StreamId>) {
        match self {
            Plan::Leaf(s) => out.push(*s),
            Plan::Join(children) => children.iter().for_each(|c| c.collect_span(out)),
        }
    }

    /// All join operators of the plan (pre-order), each with its span.
    #[must_use]
    pub fn operators(&self) -> Vec<(&Plan, Vec<StreamId>)> {
        let mut out = Vec::new();
        self.collect_operators(&mut out);
        out
    }

    fn collect_operators<'p>(&'p self, out: &mut Vec<(&'p Plan, Vec<StreamId>)>) {
        if let Plan::Join(children) = self {
            out.push((self, self.span()));
            children.iter().for_each(|c| c.collect_operators(out));
        }
    }

    /// Number of join operators.
    #[must_use]
    pub fn operator_count(&self) -> usize {
        match self {
            Plan::Leaf(_) => 0,
            Plan::Join(children) => 1 + children.iter().map(Plan::operator_count).sum::<usize>(),
        }
    }

    /// Validates the plan against a query: every stream appears as exactly one
    /// leaf, every join has ≥ 2 children, and (unless the query is a single
    /// stream) the root is a join. Also rejects operators whose span is
    /// disconnected in the join graph — such an operator computes a cross
    /// product, which is unbounded regardless of punctuations.
    pub fn validate(&self, query: &Cjq) -> CoreResult<()> {
        let span = self.span();
        let expected: Vec<StreamId> = query.stream_ids().collect();
        if span != expected {
            return Err(CoreError::InvalidPlan(format!(
                "plan spans {span:?} but the query has streams {expected:?}"
            )));
        }
        self.validate_node(query)
    }

    fn validate_node(&self, query: &Cjq) -> CoreResult<()> {
        if let Plan::Join(children) = self {
            if children.len() < 2 {
                return Err(CoreError::InvalidPlan(
                    "join operator with fewer than 2 inputs".into(),
                ));
            }
            let span = self.span();
            if !query.is_connected_over(&span) {
                return Err(CoreError::InvalidPlan(format!(
                    "operator over {span:?} is a cross product (disconnected join graph)"
                )));
            }
            children.iter().try_for_each(|c| c.validate_node(query))?;
        }
        Ok(())
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Leaf(s) => write!(f, "{s}"),
            Plan::Join(children) => {
                write!(f, "(")?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⋈ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Safety verdict for one operator of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorSafety {
    /// The streams the operator spans.
    pub span: Vec<StreamId>,
    /// The operator-level safety report (Corollary 1/2).
    pub report: SafetyReport,
}

/// Safety verdict for a whole plan (Definition 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSafety {
    /// Whether every operator is purgeable.
    pub safe: bool,
    /// Per-operator verdicts, in pre-order.
    pub operators: Vec<OperatorSafety>,
}

impl PlanSafety {
    /// The first unpurgeable operator's span, if any.
    #[must_use]
    pub fn first_unsafe_operator(&self) -> Option<&[StreamId]> {
        self.operators
            .iter()
            .find(|o| !o.report.safe)
            .map(|o| o.span.as_slice())
    }
}

/// Definition 2: checks the safety of an execution plan under `ℜ`.
pub fn check_plan(query: &Cjq, schemes: &SchemeSet, plan: &Plan) -> CoreResult<PlanSafety> {
    plan.validate(query)?;
    let operators: Vec<OperatorSafety> = plan
        .operators()
        .into_iter()
        .map(|(_, span)| {
            let report = safety::check_operator(query, schemes, &span);
            OperatorSafety { span, report }
        })
        .collect();
    let safe = operators.iter().all(|o| o.report.safe);
    Ok(PlanSafety { safe, operators })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinPredicate;
    use crate::schema::{Catalog, StreamSchema};
    use crate::scheme::PunctuationScheme;

    fn fig5() -> (Cjq, SchemeSet) {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["A", "C"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 1, 1, 0).unwrap(),
                JoinPredicate::between(1, 1, 2, 1).unwrap(),
                JoinPredicate::between(2, 0, 0, 0).unwrap(),
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(0, &[1]).unwrap(),
            PunctuationScheme::on(1, &[1]).unwrap(),
            PunctuationScheme::on(2, &[0]).unwrap(),
        ]);
        (q, r)
    }

    #[test]
    fn figure_7_mjoin_safe_binary_trees_unsafe() {
        let (q, r) = fig5();
        // The single MJoin plan is safe.
        let mjoin = Plan::mjoin_all(&q);
        let verdict = check_plan(&q, &r, &mjoin).unwrap();
        assert!(verdict.safe);
        assert_eq!(verdict.operators.len(), 1);

        // Every left-deep binary tree is unsafe (Figure 7 shows (S1⋈S2)⋈S3).
        for order in [[0usize, 1, 2], [1, 2, 0], [0, 2, 1]] {
            let ids: Vec<StreamId> = order.iter().map(|&i| StreamId(i)).collect();
            let plan = Plan::left_deep(&ids);
            let verdict = check_plan(&q, &r, &plan).unwrap();
            assert!(!verdict.safe, "plan {plan} should be unsafe");
            // The offending operator is the lower binary join.
            let span = verdict.first_unsafe_operator().unwrap();
            assert_eq!(span.len(), 2);
        }
    }

    #[test]
    fn plan_span_and_operator_enumeration() {
        let plan = Plan::join(vec![
            Plan::join(vec![Plan::leaf(0), Plan::leaf(1)]),
            Plan::leaf(2),
        ]);
        assert_eq!(plan.span(), vec![StreamId(0), StreamId(1), StreamId(2)]);
        assert_eq!(plan.operator_count(), 2);
        let ops = plan.operators();
        assert_eq!(ops[0].1.len(), 3); // root first (pre-order)
        assert_eq!(ops[1].1.len(), 2);
        assert_eq!(plan.to_string(), "((S1 ⋈ S2) ⋈ S3)");
    }

    #[test]
    fn validate_rejects_wrong_leaves() {
        let (q, _) = fig5();
        // Missing S3.
        let p = Plan::join(vec![Plan::leaf(0), Plan::leaf(1)]);
        assert!(p.validate(&q).is_err());
        // Duplicate stream.
        let p = Plan::join(vec![Plan::leaf(0), Plan::leaf(1), Plan::leaf(1)]);
        assert!(p.validate(&q).is_err());
        // Correct.
        assert!(Plan::mjoin_all(&q).validate(&q).is_ok());
    }

    #[test]
    fn validate_rejects_unary_joins_and_cross_products() {
        let (q, _) = fig5();
        let unary = Plan::Join(vec![Plan::Join(vec![
            Plan::leaf(0),
            Plan::leaf(1),
            Plan::leaf(2),
        ])]);
        assert!(unary.validate(&q).is_err());

        // A 4th stream connected only through S1 makes {S2, S3-less} pair...
        // Build a path query S1-S2-S3 and try the cross-product pair (S1,S3).
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["B"]).unwrap());
        let path = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 0, 1, 0).unwrap(),
                JoinPredicate::between(1, 1, 2, 0).unwrap(),
            ],
        )
        .unwrap();
        let cross = Plan::join(vec![
            Plan::join(vec![Plan::leaf(0), Plan::leaf(2)]), // S1 x S3!
            Plan::leaf(1),
        ]);
        assert!(cross.validate(&path).is_err());
    }

    #[test]
    fn left_deep_builder() {
        let p = Plan::left_deep(&[StreamId(2), StreamId(0), StreamId(1)]);
        assert_eq!(p.to_string(), "((S3 ⋈ S1) ⋈ S2)");
        assert_eq!(p.operator_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two streams")]
    fn left_deep_requires_two_streams() {
        let _ = Plan::left_deep(&[StreamId(0)]);
    }

    #[test]
    fn bushy_and_mixed_plans_check() {
        // 4-stream cycle with all forward attrs punctuatable both ways =>
        // everything safe, including bushy plans.
        let mut cat = Catalog::new();
        for name in ["S1", "S2", "S3", "S4"] {
            cat.add_stream(StreamSchema::new(name, ["X", "Y"]).unwrap());
        }
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 1, 1, 0).unwrap(),
                JoinPredicate::between(1, 1, 2, 0).unwrap(),
                JoinPredicate::between(2, 1, 3, 0).unwrap(),
                JoinPredicate::between(3, 1, 0, 0).unwrap(),
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes((0..4).flat_map(|s| {
            [
                PunctuationScheme::on(s, &[0]).unwrap(),
                PunctuationScheme::on(s, &[1]).unwrap(),
            ]
        }));
        let bushy = Plan::join(vec![
            Plan::join(vec![Plan::leaf(0), Plan::leaf(1)]),
            Plan::join(vec![Plan::leaf(2), Plan::leaf(3)]),
        ]);
        let verdict = check_plan(&q, &r, &bushy).unwrap();
        assert!(verdict.safe);
        assert_eq!(verdict.operators.len(), 3);
    }
}
