//! Continuous join queries `CJQ(ℑ, ℘)` (paper §2.2).
//!
//! A CJQ is defined over a set of streams `ℑ = {S_1, ..., S_n}` and a set of
//! equi-join predicates `℘`; conjunctive predicates between a stream pair are
//! allowed (several [`JoinPredicate`]s on the same pair).

use std::collections::HashSet;
use std::fmt;

use crate::error::{CoreError, CoreResult};
use crate::schema::{AttrId, AttrRef, Catalog, StreamId};

/// One equi-join predicate `S_i.A_x = S_j.A_y` between two distinct streams.
///
/// Predicates are undirected; construction normalizes the endpoint order so
/// that `left.stream < right.stream`, making equality structural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinPredicate {
    /// Endpoint on the lower-numbered stream.
    pub left: AttrRef,
    /// Endpoint on the higher-numbered stream.
    pub right: AttrRef,
}

impl JoinPredicate {
    /// Creates a normalized equi-join predicate. Fails on self-joins
    /// (predicates within a single stream), which the paper does not consider.
    pub fn new(a: AttrRef, b: AttrRef) -> CoreResult<Self> {
        if a.stream == b.stream {
            return Err(CoreError::InvalidPredicate(format!(
                "self-join predicate on {}: both endpoints on the same stream",
                a.stream
            )));
        }
        let (left, right) = if a.stream < b.stream { (a, b) } else { (b, a) };
        Ok(JoinPredicate { left, right })
    }

    /// Convenience constructor from raw `(stream, attr)` indices.
    pub fn between(s1: usize, a1: usize, s2: usize, a2: usize) -> CoreResult<Self> {
        JoinPredicate::new(AttrRef::new(s1, a1), AttrRef::new(s2, a2))
    }

    /// The two streams the predicate connects.
    #[must_use]
    pub fn streams(&self) -> (StreamId, StreamId) {
        (self.left.stream, self.right.stream)
    }

    /// Whether the predicate touches `stream`.
    #[must_use]
    pub fn touches(&self, stream: StreamId) -> bool {
        self.left.stream == stream || self.right.stream == stream
    }

    /// The endpoint on `stream`, if the predicate touches it.
    #[must_use]
    pub fn endpoint_on(&self, stream: StreamId) -> Option<AttrRef> {
        if self.left.stream == stream {
            Some(self.left)
        } else if self.right.stream == stream {
            Some(self.right)
        } else {
            None
        }
    }

    /// The endpoint opposite to `stream`, if the predicate touches it.
    #[must_use]
    pub fn endpoint_opposite(&self, stream: StreamId) -> Option<AttrRef> {
        if self.left.stream == stream {
            Some(self.right)
        } else if self.right.stream == stream {
            Some(self.left)
        } else {
            None
        }
    }
}

impl fmt::Display for JoinPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.left, self.right)
    }
}

/// A continuous join query: streams (via a [`Catalog`]) plus join predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cjq {
    catalog: Catalog,
    predicates: Vec<JoinPredicate>,
}

impl Cjq {
    /// Builds and validates a query.
    ///
    /// Validation enforces: at least one stream; all predicate endpoints
    /// resolve in the catalog; no duplicate predicates; and the join graph is
    /// connected (a disconnected CJQ is a cross product of independent joins,
    /// which is unbounded by construction and outside the paper's scope).
    pub fn new(catalog: Catalog, predicates: Vec<JoinPredicate>) -> CoreResult<Self> {
        if catalog.is_empty() {
            return Err(CoreError::InvalidQuery("query over zero streams".into()));
        }
        let mut seen = HashSet::new();
        for p in &predicates {
            catalog.check_ref(p.left)?;
            catalog.check_ref(p.right)?;
            if !seen.insert(*p) {
                return Err(CoreError::InvalidQuery(format!(
                    "duplicate join predicate {p}"
                )));
            }
        }
        let q = Cjq {
            catalog,
            predicates,
        };
        if q.n_streams() > 1 && !q.is_connected() {
            return Err(CoreError::InvalidQuery(
                "join graph is not connected (cross products are not supported)".into(),
            ));
        }
        Ok(q)
    }

    /// The stream catalog `ℑ`.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The join predicates `℘`.
    #[must_use]
    pub fn predicates(&self) -> &[JoinPredicate] {
        &self.predicates
    }

    /// Number of streams `n`.
    #[must_use]
    pub fn n_streams(&self) -> usize {
        self.catalog.len()
    }

    /// All stream ids of the query.
    pub fn stream_ids(&self) -> impl Iterator<Item = StreamId> {
        (0..self.catalog.len()).map(StreamId)
    }

    /// Predicates between streams `a` and `b` (the conjunctive group).
    pub fn predicates_between(
        &self,
        a: StreamId,
        b: StreamId,
    ) -> impl Iterator<Item = &JoinPredicate> {
        self.predicates
            .iter()
            .filter(move |p| p.touches(a) && p.touches(b))
    }

    /// Predicates touching `stream`.
    pub fn predicates_on(&self, stream: StreamId) -> impl Iterator<Item = &JoinPredicate> {
        self.predicates.iter().filter(move |p| p.touches(stream))
    }

    /// The *join attributes* of `stream`: attribute positions that appear in
    /// some predicate endpoint on that stream.
    #[must_use]
    pub fn join_attrs(&self, stream: StreamId) -> Vec<AttrId> {
        let mut attrs: Vec<AttrId> = self
            .predicates_on(stream)
            .filter_map(|p| p.endpoint_on(stream))
            .map(|r| r.attr)
            .collect();
        attrs.sort_unstable();
        attrs.dedup();
        attrs
    }

    /// Streams joined to `stream.attr`: the partner streams of every predicate
    /// whose endpoint on `stream` is `attr`.
    #[must_use]
    pub fn partners_of(&self, stream: StreamId, attr: AttrId) -> Vec<StreamId> {
        let mut partners: Vec<StreamId> = self
            .predicates_on(stream)
            .filter(|p| p.endpoint_on(stream).map(|r| r.attr) == Some(attr))
            .filter_map(|p| p.endpoint_opposite(stream))
            .map(|r| r.stream)
            .collect();
        partners.sort_unstable();
        partners.dedup();
        partners
    }

    /// Whether the (undirected) join graph over all streams is connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.is_connected_over(&self.stream_ids().collect::<Vec<_>>())
    }

    /// Whether the join graph restricted to `subset` is connected.
    #[must_use]
    pub fn is_connected_over(&self, subset: &[StreamId]) -> bool {
        if subset.is_empty() {
            return false;
        }
        let in_subset: HashSet<StreamId> = subset.iter().copied().collect();
        let mut seen = HashSet::new();
        let mut stack = vec![subset[0]];
        seen.insert(subset[0]);
        while let Some(s) = stack.pop() {
            for p in self.predicates_on(s) {
                let other = p.endpoint_opposite(s).expect("touches s").stream;
                if in_subset.contains(&other) && seen.insert(other) {
                    stack.push(other);
                }
            }
        }
        seen.len() == subset.len()
    }

    /// Pretty-prints a predicate using catalog names.
    #[must_use]
    pub fn display_predicate(&self, p: &JoinPredicate) -> String {
        format!(
            "{} = {}",
            self.catalog.display_ref(p.left),
            self.catalog.display_ref(p.right)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::StreamSchema;

    /// The paper's Figure 3 query: S1(A,B), S2(B,C), S3(C,A) with
    /// S1.B = S2.B and S2.C = S3.C.
    pub(crate) fn fig3_query() -> Cjq {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["C", "A"]).unwrap());
        Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 1, 1, 0).unwrap(), // S1.B = S2.B
                JoinPredicate::between(1, 1, 2, 0).unwrap(), // S2.C = S3.C
            ],
        )
        .unwrap()
    }

    #[test]
    fn predicate_normalizes_endpoint_order() {
        let a = JoinPredicate::between(2, 0, 0, 1).unwrap();
        let b = JoinPredicate::between(0, 1, 2, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.left.stream, StreamId(0));
    }

    #[test]
    fn predicate_rejects_self_join() {
        assert!(JoinPredicate::between(1, 0, 1, 1).is_err());
    }

    #[test]
    fn predicate_endpoints() {
        let p = JoinPredicate::between(0, 1, 1, 0).unwrap();
        assert_eq!(p.streams(), (StreamId(0), StreamId(1)));
        assert!(p.touches(StreamId(0)));
        assert!(!p.touches(StreamId(2)));
        assert_eq!(p.endpoint_on(StreamId(1)), Some(AttrRef::new(1, 0)));
        assert_eq!(p.endpoint_opposite(StreamId(1)), Some(AttrRef::new(0, 1)));
        assert_eq!(p.endpoint_on(StreamId(2)), None);
    }

    #[test]
    fn query_validates_connectivity() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["A"]).unwrap());
        // Only S1-S2 joined: S3 disconnected.
        let err = Cjq::new(cat, vec![JoinPredicate::between(0, 0, 1, 0).unwrap()]);
        assert!(err.is_err());
    }

    #[test]
    fn query_rejects_duplicates_and_bad_refs() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A"]).unwrap());
        let p = JoinPredicate::between(0, 0, 1, 0).unwrap();
        assert!(Cjq::new(cat.clone(), vec![p, p]).is_err());
        let bad = JoinPredicate::between(0, 5, 1, 0).unwrap();
        assert!(Cjq::new(cat, vec![bad]).is_err());
    }

    #[test]
    fn single_stream_query_is_allowed() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        let q = Cjq::new(cat, vec![]).unwrap();
        assert_eq!(q.n_streams(), 1);
    }

    #[test]
    fn join_attrs_and_partners() {
        let q = fig3_query();
        assert_eq!(q.join_attrs(StreamId(0)), vec![AttrId(1)]); // S1.B
        assert_eq!(q.join_attrs(StreamId(1)), vec![AttrId(0), AttrId(1)]); // S2.B, S2.C
        assert_eq!(q.partners_of(StreamId(1), AttrId(0)), vec![StreamId(0)]);
        assert_eq!(q.partners_of(StreamId(1), AttrId(1)), vec![StreamId(2)]);
        assert_eq!(
            q.partners_of(StreamId(1), AttrId(9)),
            Vec::<StreamId>::new()
        );
    }

    #[test]
    fn predicates_between_pairs() {
        let q = fig3_query();
        assert_eq!(q.predicates_between(StreamId(0), StreamId(1)).count(), 1);
        assert_eq!(q.predicates_between(StreamId(0), StreamId(2)).count(), 0);
    }

    #[test]
    fn connectivity_over_subsets() {
        let q = fig3_query();
        assert!(q.is_connected());
        assert!(q.is_connected_over(&[StreamId(0), StreamId(1)]));
        // S1 and S3 are only connected through S2.
        assert!(!q.is_connected_over(&[StreamId(0), StreamId(2)]));
        assert!(!q.is_connected_over(&[]));
        assert!(q.is_connected_over(&[StreamId(2)]));
    }

    #[test]
    fn display_uses_names() {
        let q = fig3_query();
        assert_eq!(q.display_predicate(&q.predicates()[0]), "S1.B = S2.B");
    }
}
