//! Safety checking of continuous join queries (paper §4, Theorems 1–5).
//!
//! Entry points:
//!
//! * [`check_query`] — full safety report for a CJQ under a scheme set,
//!   choosing the linear-time plain-PG check when every scheme has a single
//!   punctuatable attribute (§4.1) and the polynomial TPG/GPG machinery
//!   otherwise (§4.2–4.3).
//! * [`is_query_safe`] — boolean fast path (Theorem 2 / Theorem 4).
//! * [`check_operator`] — purgeability of one join operator over a subset of
//!   the query's streams (Corollaries 1 and 2).
//! * [`stream_purgeable`] — purgeability of a single join state (Theorems 1
//!   and 3).

use crate::gpg::GeneralizedPunctuationGraph;
use crate::pg::PunctuationGraph;
use crate::query::Cjq;
use crate::schema::StreamId;
use crate::scheme::SchemeSet;
use crate::tpg;

/// Which algorithm produced a [`SafetyReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMethod {
    /// Plain punctuation graph, single-attribute schemes only (linear time,
    /// Theorems 1–2).
    SimplePg,
    /// Generalized punctuation graph fixpoint + transformed punctuation graph
    /// (polynomial time, Theorems 3–5).
    Generalized,
}

/// Purgeability of one input stream's join state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPurgeability {
    /// The stream whose join state is analyzed.
    pub stream: StreamId,
    /// Theorem 1/3 verdict: the stream reaches every other input.
    pub purgeable: bool,
    /// Streams the analyzed stream cannot reach (empty iff purgeable). Each
    /// entry is an unsafety witness: tuples of `stream` can wait forever for
    /// matches from these inputs.
    pub unreachable: Vec<StreamId>,
}

/// Full result of a safety check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyReport {
    /// Whether the query/operator can be executed with bounded join state.
    pub safe: bool,
    /// Which algorithm was used.
    pub method: CheckMethod,
    /// Per-stream purgeability (Theorem 1/3), in stream order.
    pub per_stream: Vec<StreamPurgeability>,
}

impl SafetyReport {
    /// The purgeable streams.
    pub fn purgeable_streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.per_stream
            .iter()
            .filter(|p| p.purgeable)
            .map(|p| p.stream)
    }

    /// A witness pair `(from, to)` proving unsafety: `from`'s join state can
    /// never be fully purged because punctuations cannot guard it against
    /// future `to` data. `None` when safe.
    #[must_use]
    pub fn witness(&self) -> Option<(StreamId, StreamId)> {
        self.per_stream
            .iter()
            .find(|p| !p.purgeable)
            .map(|p| (p.stream, p.unreachable[0]))
    }

    /// Every witness pair `(from, to)` proving unsafety: `from`'s join state
    /// can never be fully purged because punctuations cannot guard it against
    /// future `to` data. Empty when safe. The first entry equals
    /// [`SafetyReport::witness`]; diagnostics enumerate them all.
    #[must_use]
    pub fn witnesses(&self) -> Vec<(StreamId, StreamId)> {
        self.per_stream
            .iter()
            .flat_map(|p| p.unreachable.iter().map(|&t| (p.stream, t)))
            .collect()
    }

    /// Renders the report as human-readable text using the query's stream
    /// names (what `cjq-check` prints).
    #[must_use]
    pub fn render(&self, query: &Cjq) -> String {
        use std::fmt::Write as _;
        let name = |s: StreamId| {
            query
                .catalog()
                .schema(s)
                .map_or_else(|| s.to_string(), |sc| sc.name().to_owned())
        };
        let mut out = format!(
            "verdict: {} ({:?} check)\n",
            if self.safe { "SAFE" } else { "UNSAFE" },
            self.method
        );
        for p in &self.per_stream {
            if p.purgeable {
                let _ = writeln!(out, "  {}: purgeable", name(p.stream));
            } else {
                let blockers: Vec<String> = p.unreachable.iter().map(|s| name(*s)).collect();
                let _ = writeln!(
                    out,
                    "  {}: NOT purgeable — no punctuations can guard it against \
                     future data from {}",
                    name(p.stream),
                    blockers.join(", ")
                );
            }
        }
        out
    }
}

/// Whether every scheme in `ℜ` has a single punctuatable attribute, i.e. the
/// §4.1 "simple" setting where the plain punctuation graph is exact.
#[must_use]
pub fn all_schemes_simple(schemes: &SchemeSet) -> bool {
    schemes.schemes().iter().all(|s| s.arity() == 1)
}

/// Theorem 2 / Theorem 4: whether the CJQ has at least one safe execution
/// plan under `ℜ`. Uses the linear-time PG check when all schemes are simple
/// and the polynomial TPG transformation otherwise.
#[must_use]
pub fn is_query_safe(query: &Cjq, schemes: &SchemeSet) -> bool {
    if all_schemes_simple(schemes) {
        PunctuationGraph::of_query(query, schemes).is_strongly_connected()
    } else {
        tpg::transform_query(query, schemes).is_single_node()
    }
}

/// Corollary 1 / Corollary 2: whether the join operator with inputs
/// `streams` is purgeable under `ℜ`.
#[must_use]
pub fn is_operator_purgeable(query: &Cjq, schemes: &SchemeSet, streams: &[StreamId]) -> bool {
    if all_schemes_simple(schemes) {
        PunctuationGraph::over(query, schemes, streams).is_strongly_connected()
    } else {
        tpg::transform_over(query, schemes, streams).is_single_node()
    }
}

/// Whether the join state of a *port* spanning `roots` inside the operator
/// over `scope` is purgeable under `ℜ`: punctuations must (transitively)
/// guard the port's partial results against every stream of the scope, i.e.
/// the root set must reach all of `scope` in the GPG (the multi-root
/// generalization of Theorems 1/3 that the chained purge-recipe derivation
/// implements). This is the static verdict the `verify-certificates` runtime
/// feature cross-checks against compiled recipes.
#[must_use]
pub fn port_purgeable(
    query: &Cjq,
    schemes: &SchemeSet,
    scope: &[StreamId],
    roots: &[StreamId],
) -> bool {
    let gpg = GeneralizedPunctuationGraph::over(query, schemes, scope);
    let reached = gpg.reachable_from_set(roots);
    gpg.streams()
        .iter()
        .all(|s| reached.binary_search(s).is_ok())
}

/// Theorem 1 / Theorem 3: whether the join state of `stream` in the operator
/// over `streams` is purgeable under `ℜ`.
#[must_use]
pub fn stream_purgeable(
    query: &Cjq,
    schemes: &SchemeSet,
    streams: &[StreamId],
    stream: StreamId,
) -> bool {
    // The GPG subsumes the PG: with simple schemes it has no hyper edges and
    // its reachability equals plain reachability.
    GeneralizedPunctuationGraph::over(query, schemes, streams).reaches_all(stream)
}

/// Full safety report for a query (the query treated as one MJoin operator,
/// per Theorems 2 and 4).
#[must_use]
pub fn check_query(query: &Cjq, schemes: &SchemeSet) -> SafetyReport {
    check_operator(query, schemes, &query.stream_ids().collect::<Vec<_>>())
}

/// Full safety report for the operator over `streams`.
#[must_use]
pub fn check_operator(query: &Cjq, schemes: &SchemeSet, streams: &[StreamId]) -> SafetyReport {
    let simple = all_schemes_simple(schemes);
    let method = if simple {
        CheckMethod::SimplePg
    } else {
        CheckMethod::Generalized
    };
    let gpg = GeneralizedPunctuationGraph::over(query, schemes, streams);
    let all: Vec<StreamId> = gpg.streams().to_vec();
    let per_stream: Vec<StreamPurgeability> = all
        .iter()
        .map(|&s| {
            let reached = gpg.reachable_from(s);
            let unreachable: Vec<StreamId> = all
                .iter()
                .copied()
                .filter(|t| reached.binary_search(t).is_err())
                .collect();
            StreamPurgeability {
                stream: s,
                purgeable: unreachable.is_empty(),
                unreachable,
            }
        })
        .collect();
    let safe = per_stream.iter().all(|p| p.purgeable);
    debug_assert_eq!(
        safe,
        is_operator_purgeable(query, schemes, streams),
        "Theorem 5: fixpoint and TPG checks must agree"
    );
    SafetyReport {
        safe,
        method,
        per_stream,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinPredicate;
    use crate::schema::{Catalog, StreamSchema};
    use crate::scheme::PunctuationScheme;

    /// The auction example (Example 1): item ⋈ bid on itemid.
    fn auction() -> Cjq {
        let mut cat = Catalog::new();
        cat.add_stream(
            StreamSchema::new("item", ["sellerid", "itemid", "name", "initialprice"]).unwrap(),
        );
        cat.add_stream(StreamSchema::new("bid", ["bidderid", "itemid", "increase"]).unwrap());
        Cjq::new(cat, vec![JoinPredicate::between(0, 1, 1, 1).unwrap()]).unwrap()
    }

    #[test]
    fn auction_safe_with_itemid_schemes_on_both() {
        let q = auction();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(0, &[1]).unwrap(), // item.itemid (unique ids)
            PunctuationScheme::on(1, &[1]).unwrap(), // bid.itemid (auction close)
        ]);
        assert!(is_query_safe(&q, &r));
        let report = check_query(&q, &r);
        assert!(report.safe);
        assert_eq!(report.method, CheckMethod::SimplePg);
        assert!(report.witness().is_none());
        assert_eq!(report.purgeable_streams().count(), 2);
    }

    #[test]
    fn auction_unsafe_with_bidderid_scheme_only() {
        // §1: "if the punctuation scheme shows that there are only
        // punctuations on bidderid from bid stream, then the item stream in
        // the above query can never be purged".
        let q = auction();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(0, &[1]).unwrap(), // item.itemid
            PunctuationScheme::on(1, &[0]).unwrap(), // bid.bidderid (useless)
        ]);
        assert!(!is_query_safe(&q, &r));
        let report = check_query(&q, &r);
        assert!(!report.safe);
        // item (S1) cannot be purged; bid (S2) can (item.itemid punctuatable).
        let item = &report.per_stream[0];
        assert!(!item.purgeable);
        assert_eq!(item.unreachable, vec![StreamId(1)]);
        assert!(report.per_stream[1].purgeable);
        assert_eq!(report.witness(), Some((StreamId(0), StreamId(1))));
    }

    #[test]
    fn fig5_query_safe_but_binary_suboperators_unsafe() {
        let (q, r) = crate::fixtures::fig5();
        assert!(is_query_safe(&q, &r));
        for pair in [[0usize, 1], [1, 2], [0, 2]] {
            let streams = [StreamId(pair[0]), StreamId(pair[1])];
            assert!(!is_operator_purgeable(&q, &r, &streams));
            let rep = check_operator(&q, &r, &streams);
            assert!(!rep.safe);
            assert_eq!(rep.per_stream.len(), 2);
        }
    }

    #[test]
    fn fig8_needs_generalized_machinery() {
        let (q, r) = crate::fixtures::fig8();
        assert!(!all_schemes_simple(&r));
        assert!(is_query_safe(&q, &r));
        let report = check_query(&q, &r);
        assert_eq!(report.method, CheckMethod::Generalized);
        assert!(report.safe);
        assert!(report.per_stream.iter().all(|p| p.purgeable));
    }

    #[test]
    fn empty_scheme_set_makes_multiway_queries_unsafe() {
        let q = auction();
        let r = SchemeSet::new();
        assert!(!is_query_safe(&q, &r));
        let report = check_query(&q, &r);
        assert!(!report.safe);
        assert!(report.per_stream.iter().all(|p| !p.purgeable));
    }

    #[test]
    fn stream_purgeable_matches_report() {
        let q = auction();
        let r = SchemeSet::from_schemes([PunctuationScheme::on(0, &[1]).unwrap()]);
        let streams: Vec<StreamId> = q.stream_ids().collect();
        // Only bid is purgeable (item.itemid punctuations purge bid state).
        assert!(!stream_purgeable(&q, &r, &streams, StreamId(0)));
        assert!(stream_purgeable(&q, &r, &streams, StreamId(1)));
        let report = check_query(&q, &r);
        for p in &report.per_stream {
            assert_eq!(p.purgeable, stream_purgeable(&q, &r, &streams, p.stream));
        }
    }

    #[test]
    fn report_renders_names_and_verdicts() {
        let q = auction();
        let r = SchemeSet::from_schemes([PunctuationScheme::on(0, &[1]).unwrap()]);
        let text = check_query(&q, &r).render(&q);
        assert!(text.contains("verdict: UNSAFE"));
        assert!(text.contains("item: NOT purgeable"));
        assert!(text.contains("future data from bid"));
        assert!(text.contains("bid: purgeable"));
    }

    #[test]
    fn single_stream_operator_is_safe() {
        let q = auction();
        let r = SchemeSet::new();
        assert!(is_operator_purgeable(&q, &r, &[StreamId(0)]));
        assert!(check_operator(&q, &r, &[StreamId(0)]).safe);
    }
}
