//! Attribute values carried by stream tuples and punctuation patterns.
//!
//! The paper treats attribute values abstractly (equi-joins only need equality
//! and hashing). We provide a small dynamically-typed value so workloads can mix
//! integer keys, strings, and booleans without generics leaking into every API.

use std::fmt;

/// A single attribute value.
///
/// Values are totally ordered (`Null < Bool < Int < Str`) so they can key
/// ordered collections; equality is exact (no numeric coercion).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Absence of a value. Equi-join predicates never match `Null` (SQL-like).
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer (ids, sequence numbers, prices-in-cents...).
    Int(i64),
    /// Owned string value.
    Str(String),
}

impl Value {
    /// Returns `true` when this value can participate in an equi-join match,
    /// i.e. it is not [`Value::Null`].
    #[must_use]
    pub fn is_joinable(&self) -> bool {
        !matches!(self, Value::Null)
    }

    /// A short type name, used in error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_exact() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_eq!(Value::from("a"), Value::Str("a".to_owned()));
    }

    #[test]
    fn null_is_not_joinable() {
        assert!(!Value::Null.is_joinable());
        assert!(Value::Int(0).is_joinable());
        assert!(Value::from("").is_joinable());
        assert!(Value::Bool(false).is_joinable());
    }

    #[test]
    fn ordering_groups_by_type() {
        let mut vals = vec![
            Value::from("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Int(-1),
            Value::from("a"),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-1),
                Value::Int(2),
                Value::from("a"),
                Value::from("b"),
            ]
        );
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::from("s").type_name(), "str");
    }

    #[test]
    fn hash_agrees_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(7));
        set.insert(Value::Int(7));
        set.insert(Value::from("7"));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&Value::Int(7)));
    }
}
