//! Attribute values carried by stream tuples and punctuation patterns.
//!
//! The paper treats attribute values abstractly (equi-joins only need equality
//! and hashing). We provide a small dynamically-typed value so workloads can mix
//! integer keys, strings, and booleans without generics leaking into every API.
//!
//! String payloads are **interned** ([`Sym`]): each distinct string is stored
//! once for the process lifetime and values carry a `(u32 id, &'static str)`
//! pair. Hot-path equality and hashing on string keys is therefore
//! integer-sized (the id), there is no per-tuple `String` allocation, and
//! [`Value`] is `Copy` — the join runtime moves values through probe indexes,
//! purge chains, and shard channels without cloning heap data.

use std::fmt;
use std::sync::{Mutex, OnceLock};

use crate::fxhash::FxHashMap;

/// An interned string: equality and hashing by 32-bit id, ordering by content.
///
/// Interning is global and permanent: the backing storage is leaked, which is
/// the right trade for stream workloads where the set of distinct string keys
/// is bounded (item names, flow ids...) while the tuple count is not.
#[derive(Clone, Copy)]
pub struct Sym {
    id: u32,
    text: &'static str,
}

/// Interner storage: content → symbol plus the id → symbol reverse table
/// that lets a serialized id (e.g. a spilled cold-tier row) round-trip back
/// to its symbol within the same process.
#[derive(Default)]
struct Interner {
    by_text: FxHashMap<&'static str, Sym>,
    by_id: Vec<Sym>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::default()))
}

impl Sym {
    /// Intern `text`, returning the canonical symbol for it.
    #[must_use]
    pub fn new(text: &str) -> Sym {
        let mut table = interner().lock().expect("interner poisoned");
        if let Some(sym) = table.by_text.get(text) {
            return *sym;
        }
        let id = u32::try_from(table.by_id.len()).expect("interner overflow");
        let stored: &'static str = Box::leak(text.to_owned().into_boxed_str());
        let sym = Sym { id, text: stored };
        table.by_text.insert(stored, sym);
        table.by_id.push(sym);
        sym
    }

    /// The interned string content.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        self.text
    }

    /// This symbol's process-local intern id. Ids are dense (assigned in
    /// interning order) and stable for the process lifetime, which makes them
    /// a valid fixed-width on-disk encoding *within* one process — the
    /// cold-tier spill format relies on exactly that.
    #[inline]
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The symbol previously assigned `id`, or `None` if no such symbol was
    /// interned in this process (decoding a foreign or corrupt id).
    #[must_use]
    pub fn from_id(id: u32) -> Option<Sym> {
        interner()
            .lock()
            .expect("interner poisoned")
            .by_id
            .get(id as usize)
            .copied()
    }
}

impl PartialEq for Sym {
    #[inline]
    fn eq(&self, other: &Sym) -> bool {
        // Single global interner: equal content <=> equal id.
        self.id == other.id
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    #[inline]
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Sym {
    #[inline]
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    #[inline]
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        // Order by content so Value's documented lexicographic ordering holds.
        self.text.cmp(other.text)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.text, f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

/// A single attribute value.
///
/// Values are totally ordered (`Null < Bool < Int < Str`) so they can key
/// ordered collections; equality is exact (no numeric coercion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Absence of a value. Equi-join predicates never match `Null` (SQL-like).
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer (ids, sequence numbers, prices-in-cents...).
    Int(i64),
    /// Interned string value.
    Str(Sym),
}

impl Value {
    /// Returns `true` when this value can participate in an equi-join match,
    /// i.e. it is not [`Value::Null`].
    #[inline]
    #[must_use]
    pub fn is_joinable(&self) -> bool {
        !matches!(self, Value::Null)
    }

    /// A short type name, used in error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "str",
        }
    }

    /// Interned-string value (shorthand for `Value::Str(Sym::new(text))`).
    #[must_use]
    pub fn str(text: &str) -> Value {
        Value::Str(Sym::new(text))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Sym::new(v))
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Sym::new(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_exact() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert_ne!(Value::Int(1), Value::Bool(true));
        assert_eq!(Value::from("a"), Value::Str(Sym::new("a")));
        assert_eq!(Value::from("a"), Value::from(String::from("a")));
        assert_ne!(Value::from("a"), Value::from("b"));
    }

    #[test]
    fn null_is_not_joinable() {
        assert!(!Value::Null.is_joinable());
        assert!(Value::Int(0).is_joinable());
        assert!(Value::from("").is_joinable());
        assert!(Value::Bool(false).is_joinable());
    }

    #[test]
    fn ordering_groups_by_type() {
        let mut vals = vec![
            Value::from("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Int(-1),
            Value::from("a"),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Int(-1),
                Value::Int(2),
                Value::from("a"),
                Value::from("b"),
            ]
        );
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::Bool(true).type_name(), "bool");
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::from("s").type_name(), "str");
    }

    #[test]
    fn hash_agrees_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(7));
        set.insert(Value::Int(7));
        set.insert(Value::from("7"));
        assert_eq!(set.len(), 2);
        assert!(set.contains(&Value::Int(7)));
    }

    #[test]
    fn interning_is_canonical_and_ordered() {
        let a1 = Sym::new("alpha");
        let a2 = Sym::new("alpha");
        let b = Sym::new("beta");
        assert_eq!(a1, a2);
        assert_eq!(a1.as_str() as *const str, a2.as_str() as *const str);
        assert!(a1 < b);
        assert_eq!(a1.as_str(), "alpha");
        // Debug formats like a plain string.
        assert_eq!(format!("{a1:?}"), "\"alpha\"");
    }

    #[test]
    fn interning_from_threads_is_consistent() {
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| Sym::new("shared-key")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
