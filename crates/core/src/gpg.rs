//! The generalized punctuation graph (paper Definitions 8–10, Theorems 3–4).
//!
//! Punctuation schemes with several punctuatable attributes cannot be captured
//! by plain punctuation-graph edges: a punctuation instantiates constants on
//! *all* punctuatable attributes, so it can only guard a stream once value
//! sources for *every* such attribute are available. Definition 8 models this
//! with a *generalized* (hyper) edge `{S_{i_1}, ..., S_{i_m}} → S_i`, created
//! when a scheme on `S_i` has punctuatable attributes joining streams
//! `S_{i_1}, ..., S_{i_m}`.
//!
//! Representation note: when one punctuatable attribute joins several partner
//! streams, any single partner can supply the values (the paper's Definition 8
//! implicitly assumes one partner per attribute). Instead of materializing one
//! hyper edge per combination of partners, we store per-attribute *candidate
//! sets*; the edge activates once every attribute has at least one candidate
//! in the reachable set. The two formulations are equivalent.
//!
//! A scheme whose punctuatable attributes include a **non-join** attribute
//! contributes nothing: its punctuations carry a constant on that attribute,
//! so no finite set of them can exclude all future joinable tuples (the
//! footnote-3/4 argument of the paper's proofs).

use std::collections::HashSet;

use crate::pg::{EdgeReason, PunctuationGraph};
use crate::query::Cjq;
use crate::schema::{AttrId, StreamId};
use crate::scheme::{PunctuationScheme, SchemeSet};

/// One punctuatable attribute of a hyper edge and the partner streams that can
/// supply its values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRequirement {
    /// The punctuatable attribute on the edge's target stream.
    pub attr: AttrId,
    /// Partner streams (within the operator) joined to `attr`; reaching any
    /// one of them satisfies this requirement. Never empty.
    pub candidates: Vec<StreamId>,
}

/// A generalized directed edge `{sources} → target` (Definition 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperEdge {
    /// The stream whose punctuations this edge represents.
    pub target: StreamId,
    /// The multi-attribute scheme inducing the edge.
    pub scheme: PunctuationScheme,
    /// One requirement per punctuatable attribute of the scheme.
    pub requirements: Vec<AttrRequirement>,
}

impl HyperEdge {
    /// Whether the edge can fire given the reachable set `r`.
    #[must_use]
    pub fn active(&self, r: &HashSet<StreamId>) -> bool {
        self.requirements
            .iter()
            .all(|req| req.candidates.iter().any(|c| r.contains(c)))
    }
}

/// How a stream entered a reachable set; used to derive purge recipes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReachStep {
    /// Added through a plain (single-attribute-scheme) edge `from → added`.
    Plain {
        /// The stream that was added.
        added: StreamId,
        /// The already-reached stream the edge starts from.
        from: StreamId,
        /// Predicate + punctuatable endpoint licensing the edge.
        reason: EdgeReason,
    },
    /// Added through a generalized edge.
    Hyper {
        /// The stream that was added (the hyper edge's target).
        added: StreamId,
        /// Index into [`GeneralizedPunctuationGraph::hyper_edges`].
        edge: usize,
        /// The already-reached partner chosen for each punctuatable attribute.
        chosen: Vec<(AttrId, StreamId)>,
    },
}

impl ReachStep {
    /// The stream this step added.
    #[must_use]
    pub fn added(&self) -> StreamId {
        match self {
            ReachStep::Plain { added, .. } | ReachStep::Hyper { added, .. } => *added,
        }
    }
}

/// Definition 8 generalized punctuation graph over a subset of streams.
#[derive(Debug, Clone)]
pub struct GeneralizedPunctuationGraph {
    pg: PunctuationGraph,
    hyper: Vec<HyperEdge>,
}

impl GeneralizedPunctuationGraph {
    /// Builds the GPG of the whole query.
    #[must_use]
    pub fn of_query(query: &Cjq, schemes: &SchemeSet) -> Self {
        GeneralizedPunctuationGraph::over(query, schemes, &query.stream_ids().collect::<Vec<_>>())
    }

    /// Builds the GPG of the operator whose inputs are `streams`.
    #[must_use]
    pub fn over(query: &Cjq, schemes: &SchemeSet, streams: &[StreamId]) -> Self {
        let pg = PunctuationGraph::over(query, schemes, streams);
        let in_scope: HashSet<StreamId> = pg.streams().iter().copied().collect();
        let mut hyper = Vec::new();

        for &s in pg.streams() {
            'scheme: for scheme in schemes.for_stream(s) {
                if scheme.arity() < 2 {
                    continue; // single-attribute schemes are the plain edges
                }
                let mut requirements = Vec::with_capacity(scheme.arity());
                for &attr in scheme.punctuatable() {
                    let candidates: Vec<StreamId> = query
                        .partners_of(s, attr)
                        .into_iter()
                        .filter(|p| in_scope.contains(p))
                        .collect();
                    if candidates.is_empty() {
                        // Some punctuatable attribute is not a join attribute
                        // within this operator: the scheme is unusable here.
                        continue 'scheme;
                    }
                    requirements.push(AttrRequirement { attr, candidates });
                }
                let edge = HyperEdge {
                    target: s,
                    scheme: scheme.clone(),
                    requirements,
                };
                if !hyper.contains(&edge) {
                    hyper.push(edge);
                }
            }
        }
        GeneralizedPunctuationGraph { pg, hyper }
    }

    /// The vertices (streams), sorted ascending.
    #[must_use]
    pub fn streams(&self) -> &[StreamId] {
        self.pg.streams()
    }

    /// The plain-edge part (a Definition 7 punctuation graph).
    #[must_use]
    pub fn plain(&self) -> &PunctuationGraph {
        &self.pg
    }

    /// The generalized edges.
    #[must_use]
    pub fn hyper_edges(&self) -> &[HyperEdge] {
        &self.hyper
    }

    /// Definition 9 reachability from `origin`, with a trace of how each
    /// stream was added (origin excluded; it is reachable by definition —
    /// the worked Fig. 8/9 example requires the origin itself to count as a
    /// value source, see DESIGN.md).
    #[must_use]
    pub fn reach_trace(&self, origin: StreamId) -> Vec<ReachStep> {
        self.reach_trace_from_set(&[origin])
    }

    /// Definition 9 reachability from a *set* of origins (all counted as
    /// already-reached value sources). This is what an operator in a plan
    /// tree needs: its stored tuples are composites spanning several raw
    /// streams, and all of their values are available for chaining.
    #[must_use]
    pub fn reach_trace_from_set(&self, origins: &[StreamId]) -> Vec<ReachStep> {
        if origins.is_empty() || origins.iter().any(|o| self.pg.index_of(*o).is_none()) {
            return Vec::new();
        }
        let mut reached: HashSet<StreamId> = origins.iter().copied().collect();
        let mut trace: Vec<ReachStep> = Vec::new();
        let mut frontier: Vec<StreamId> = reached.iter().copied().collect();

        loop {
            // Close under plain edges first (Definition 9's initial step and
            // re-closure after each hyper activation).
            while let Some(u) = frontier.pop() {
                let ui = self.pg.index_of(u).expect("reached stream in scope");
                for &vi in self.pg.digraph().successors(ui) {
                    let v = self.pg.streams()[vi];
                    if reached.insert(v) {
                        let reason = self.pg.edge_reasons(u, v)[0];
                        trace.push(ReachStep::Plain {
                            added: v,
                            from: u,
                            reason,
                        });
                        frontier.push(v);
                    }
                }
            }
            // Fire any newly-enabled generalized edge.
            let mut progressed = false;
            for (ei, edge) in self.hyper.iter().enumerate() {
                if !reached.contains(&edge.target) && edge.active(&reached) {
                    let chosen = edge
                        .requirements
                        .iter()
                        .map(|req| {
                            let partner = *req
                                .candidates
                                .iter()
                                .find(|c| reached.contains(c))
                                .expect("active edge has reached candidate");
                            (req.attr, partner)
                        })
                        .collect();
                    reached.insert(edge.target);
                    trace.push(ReachStep::Hyper {
                        added: edge.target,
                        edge: ei,
                        chosen,
                    });
                    frontier.push(edge.target);
                    progressed = true;
                }
            }
            if !progressed && frontier.is_empty() {
                return trace;
            }
        }
    }

    /// The set of streams reachable from `origin`, including `origin`.
    #[must_use]
    pub fn reachable_from(&self, origin: StreamId) -> Vec<StreamId> {
        self.reachable_from_set(&[origin])
    }

    /// The set of streams reachable from a set of origins, including them.
    #[must_use]
    pub fn reachable_from_set(&self, origins: &[StreamId]) -> Vec<StreamId> {
        if origins.is_empty() || origins.iter().any(|o| self.pg.index_of(*o).is_none()) {
            return Vec::new();
        }
        let mut out: Vec<StreamId> = self
            .reach_trace_from_set(origins)
            .iter()
            .map(ReachStep::added)
            .collect();
        out.extend_from_slice(origins);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Theorem 3: the join state of `origin` is purgeable iff `origin`
    /// reaches every other vertex.
    #[must_use]
    pub fn reaches_all(&self, origin: StreamId) -> bool {
        self.pg.index_of(origin).is_some()
            && self.reachable_from(origin).len() == self.streams().len()
    }

    /// Definition 10 / Corollary 2: the operator is purgeable iff every
    /// vertex reaches every other (the GPG is "strongly connected").
    ///
    /// This is the naive polynomial reference check: one Definition 9 fixpoint
    /// per vertex. [`crate::tpg`] provides the faster transformation-based
    /// algorithm; the two are property-tested for agreement (Theorem 5).
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        self.streams().iter().all(|&s| self.reaches_all(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinPredicate;
    use crate::schema::{Catalog, StreamSchema};

    pub(crate) use crate::fixtures::fig8;

    #[test]
    fn fig8_plain_pg_is_not_strongly_connected() {
        let (q, r) = fig8();
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        // Plain edges: S2->S1 (S1.B), S1->S2 (S2.B), S3->S2 (S2.C).
        let pg = gpg.plain();
        assert!(pg.has_edge(StreamId(1), StreamId(0)));
        assert!(pg.has_edge(StreamId(0), StreamId(1)));
        assert!(pg.has_edge(StreamId(2), StreamId(1)));
        assert_eq!(pg.edge_count(), 3);
        assert!(!pg.is_strongly_connected(), "Corollary 1 alone says unsafe");
    }

    #[test]
    fn fig9_generalized_edge_shape() {
        let (q, r) = fig8();
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        // Exactly one hyper edge: {S1, S2} -> S3 from scheme S3(+,+).
        assert_eq!(gpg.hyper_edges().len(), 1);
        let e = &gpg.hyper_edges()[0];
        assert_eq!(e.target, StreamId(2));
        assert_eq!(e.requirements.len(), 2);
        assert_eq!(e.requirements[0].candidates, vec![StreamId(0)]); // A joins S1
        assert_eq!(e.requirements[1].candidates, vec![StreamId(1)]); // C joins S2
    }

    #[test]
    fn fig8_gpg_is_strongly_connected() {
        // §4.2: the 3-way operator *is* purgeable once the multi-attribute
        // scheme S3(+,+) is taken into account.
        let (q, r) = fig8();
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        for s in q.stream_ids() {
            assert!(gpg.reaches_all(s), "{s} must be purgeable in Fig. 8");
        }
        assert!(gpg.is_strongly_connected());
    }

    #[test]
    fn fig8_reach_trace_from_s1_uses_the_hyper_edge() {
        let (q, r) = fig8();
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        let trace = gpg.reach_trace(StreamId(0));
        assert_eq!(trace.len(), 2);
        // S2 enters via the plain edge S1 -> S2, then S3 via {S1,S2} -> S3.
        assert!(matches!(
            trace[0],
            ReachStep::Plain {
                added: StreamId(1),
                from: StreamId(0),
                ..
            }
        ));
        match &trace[1] {
            ReachStep::Hyper { added, chosen, .. } => {
                assert_eq!(*added, StreamId(2));
                assert_eq!(
                    chosen,
                    &vec![(AttrId(0), StreamId(0)), (AttrId(1), StreamId(1))]
                );
            }
            other => panic!("expected hyper step, got {other:?}"),
        }
    }

    #[test]
    fn origin_counts_as_value_source() {
        // Two streams, one predicate S1.A = S2.A, multi-attr scheme on S2 over
        // (A, B) where B joins S1 too: {S1} -> S2 must fire from S1 alone.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "B"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 0, 1, 0).unwrap(),
                JoinPredicate::between(0, 1, 1, 1).unwrap(),
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([PunctuationScheme::on(1, &[0, 1]).unwrap()]);
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        assert_eq!(gpg.hyper_edges().len(), 1);
        assert!(gpg.reaches_all(StreamId(0)));
        assert!(!gpg.reaches_all(StreamId(1)), "S2 has no way back to S1");
        assert!(!gpg.is_strongly_connected());
    }

    #[test]
    fn scheme_with_non_join_attribute_is_unusable() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "Z"]).unwrap());
        let q = Cjq::new(cat, vec![JoinPredicate::between(0, 0, 1, 0).unwrap()]).unwrap();
        // Z never appears in a predicate: the scheme contributes nothing.
        let r = SchemeSet::from_schemes([PunctuationScheme::on(1, &[0, 1]).unwrap()]);
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        assert!(gpg.hyper_edges().is_empty());
        assert!(!gpg.reaches_all(StreamId(0)));
    }

    #[test]
    fn simple_schemes_reduce_gpg_to_pg() {
        let (q, r) = crate::fixtures::fig5();
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        assert!(gpg.hyper_edges().is_empty());
        assert!(gpg.is_strongly_connected());
        assert_eq!(
            gpg.reachable_from(StreamId(0)),
            vec![StreamId(0), StreamId(1), StreamId(2)]
        );
    }

    #[test]
    fn unknown_origin_yields_empty_results() {
        let (q, r) = fig8();
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        assert!(gpg.reach_trace(StreamId(9)).is_empty());
        assert!(gpg.reachable_from(StreamId(9)).is_empty());
        assert!(!gpg.reaches_all(StreamId(9)));
    }

    #[test]
    fn chained_hyper_activation() {
        // S1 -A- S2, S2 -B- S3, S3 -C- S4; scheme S2(A) simple;
        // scheme S3(B) simple; scheme S4 multi on (C) with... make S4's
        // scheme multi over C and D where D joins S2: requires both S3-chain
        // and S2 reached before S4 activates.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "B", "D"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["B", "C"]).unwrap());
        cat.add_stream(StreamSchema::new("S4", ["C", "D"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 0, 1, 0).unwrap(), // S1.A = S2.A
                JoinPredicate::between(1, 1, 2, 0).unwrap(), // S2.B = S3.B
                JoinPredicate::between(2, 1, 3, 0).unwrap(), // S3.C = S4.C
                JoinPredicate::between(1, 2, 3, 1).unwrap(), // S2.D = S4.D
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(1, &[0]).unwrap(),    // S2.A simple
            PunctuationScheme::on(2, &[0]).unwrap(),    // S3.B simple
            PunctuationScheme::on(3, &[0, 1]).unwrap(), // S4 on (C, D)
        ]);
        let gpg = GeneralizedPunctuationGraph::of_query(&q, &r);
        let reached = gpg.reachable_from(StreamId(0));
        assert_eq!(
            reached,
            vec![StreamId(0), StreamId(1), StreamId(2), StreamId(3)]
        );
        // The hyper step must come last (after both S2 and S3 are in R).
        let trace = gpg.reach_trace(StreamId(0));
        assert!(matches!(
            trace.last(),
            Some(ReachStep::Hyper {
                added: StreamId(3),
                ..
            })
        ));
    }
}
