//! The punctuation graph (paper Definition 7).
//!
//! For a join operator `⋈^n` under a punctuation scheme set `ℜ`, the
//! punctuation graph `PG^ℜ(⋈^n)` has the operator's input streams as vertices
//! and, for every join predicate `S_i.A_x = S_j.A_y` such that some
//! **single-attribute** scheme makes `S_i.A_x` punctuatable, a directed edge
//! `S_j → S_i`.
//!
//! Intuition for the direction: an edge `u → v` means tuples "chained through"
//! `u` can be guarded against future `v` data, because `v`'s side of the
//! predicate is punctuatable. Theorem 1 then reads: the join state of `S_i` is
//! purgeable iff `S_i` reaches every other input in this graph.
//!
//! Multi-attribute schemes do **not** contribute edges here; they are handled
//! by the generalized punctuation graph (Definition 8, [`crate::gpg`]). This
//! matches the paper's §4.1/§4.2 split: Corollary 1 on the plain PG is exact
//! only when ℜ contains single-attribute schemes.

use std::collections::HashMap;

use crate::graph::DiGraph;
use crate::query::{Cjq, JoinPredicate};
use crate::schema::StreamId;
use crate::scheme::SchemeSet;

/// Why a punctuation-graph edge exists: the predicate that relates the two
/// streams and the punctuatable endpoint that licensed the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeReason {
    /// The join predicate inducing the edge.
    pub predicate: JoinPredicate,
    /// The punctuatable endpoint (always on the edge's target stream).
    pub punctuatable_on: crate::schema::AttrRef,
}

/// Definition 7 punctuation graph over a subset of a query's streams.
#[derive(Debug, Clone)]
pub struct PunctuationGraph {
    streams: Vec<StreamId>,
    index: HashMap<StreamId, usize>,
    graph: DiGraph,
    reasons: HashMap<(usize, usize), Vec<EdgeReason>>,
}

impl PunctuationGraph {
    /// Builds the punctuation graph of the whole query (the query treated as a
    /// single MJoin operator, as Theorem 2 prescribes).
    #[must_use]
    pub fn of_query(query: &Cjq, schemes: &SchemeSet) -> Self {
        PunctuationGraph::over(query, schemes, &query.stream_ids().collect::<Vec<_>>())
    }

    /// Builds the punctuation graph of the operator whose inputs are
    /// `streams`, considering only predicates with both endpoints inside.
    ///
    /// Runs in time linear in `|℘| · |ℜ|` (Definition 7 is a single scan over
    /// predicates with a scheme lookup per endpoint).
    #[must_use]
    pub fn over(query: &Cjq, schemes: &SchemeSet, streams: &[StreamId]) -> Self {
        let mut streams = streams.to_vec();
        streams.sort_unstable();
        streams.dedup();
        let index: HashMap<StreamId, usize> =
            streams.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        let mut graph = DiGraph::new(streams.len());
        let mut reasons: HashMap<(usize, usize), Vec<EdgeReason>> = HashMap::new();

        for p in query.predicates() {
            let (Some(&il), Some(&ir)) = (index.get(&p.left.stream), index.get(&p.right.stream))
            else {
                continue;
            };
            // Predicate S_i.A_x = S_j.A_y with S_i.A_x punctuatable (by a
            // single-attribute scheme) yields the edge S_j -> S_i.
            if schemes.simple_punctuatable(p.left.stream, p.left.attr) {
                graph.add_edge(ir, il);
                reasons.entry((ir, il)).or_default().push(EdgeReason {
                    predicate: *p,
                    punctuatable_on: p.left,
                });
            }
            if schemes.simple_punctuatable(p.right.stream, p.right.attr) {
                graph.add_edge(il, ir);
                reasons.entry((il, ir)).or_default().push(EdgeReason {
                    predicate: *p,
                    punctuatable_on: p.right,
                });
            }
        }
        PunctuationGraph {
            streams,
            index,
            graph,
            reasons,
        }
    }

    /// The vertices (streams), sorted ascending.
    #[must_use]
    pub fn streams(&self) -> &[StreamId] {
        &self.streams
    }

    /// The vertex index of `s`, if present.
    #[must_use]
    pub fn index_of(&self, s: StreamId) -> Option<usize> {
        self.index.get(&s).copied()
    }

    /// The underlying directed graph (vertex `i` is `self.streams()[i]`).
    #[must_use]
    pub fn digraph(&self) -> &DiGraph {
        &self.graph
    }

    /// Whether the directed edge `from → to` exists.
    #[must_use]
    pub fn has_edge(&self, from: StreamId, to: StreamId) -> bool {
        match (self.index_of(from), self.index_of(to)) {
            (Some(u), Some(v)) => self.graph.has_edge(u, v),
            _ => false,
        }
    }

    /// The reasons (predicate + punctuatable endpoint) for edge `from → to`.
    #[must_use]
    pub fn edge_reasons(&self, from: StreamId, to: StreamId) -> &[EdgeReason] {
        match (self.index_of(from), self.index_of(to)) {
            (Some(u), Some(v)) => self.reasons.get(&(u, v)).map_or(&[], Vec::as_slice),
            _ => &[],
        }
    }

    /// Streams reachable from `s` (including `s`). Theorem 1: the join state
    /// of `s` is purgeable iff this is every vertex.
    #[must_use]
    pub fn reachable_from(&self, s: StreamId) -> Vec<StreamId> {
        let Some(i) = self.index_of(s) else {
            return Vec::new();
        };
        let mut out: Vec<StreamId> = self
            .graph
            .reachable_from(i)
            .into_iter()
            .map(|j| self.streams[j])
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether `s` reaches every other vertex (Theorem 1 purgeability).
    #[must_use]
    pub fn reaches_all(&self, s: StreamId) -> bool {
        match self.index_of(s) {
            Some(i) => self.graph.reachable_from(i).len() == self.streams.len(),
            None => false,
        }
    }

    /// Corollary 1: whether the operator is purgeable, i.e. the punctuation
    /// graph is strongly connected.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        self.graph.is_strongly_connected()
    }

    /// Number of directed edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinPredicate;
    use crate::schema::{Catalog, StreamSchema};
    use crate::scheme::PunctuationScheme;

    use crate::fixtures::fig5;

    #[test]
    fn fig5_graph_is_the_paper_cycle() {
        let (q, r) = fig5();
        let pg = PunctuationGraph::of_query(&q, &r);
        // S1.B punctuatable  => S2 -> S1
        // S2.C punctuatable  => S3 -> S2
        // S3.A punctuatable  => S1 -> S3
        assert!(pg.has_edge(StreamId(1), StreamId(0)));
        assert!(pg.has_edge(StreamId(2), StreamId(1)));
        assert!(pg.has_edge(StreamId(0), StreamId(2)));
        assert_eq!(pg.edge_count(), 3);
        assert!(pg.is_strongly_connected());
        for s in q.stream_ids() {
            assert!(pg.reaches_all(s), "{s} must reach all in Fig. 5");
        }
    }

    #[test]
    fn fig5_edge_reasons_point_at_punctuatable_endpoint() {
        let (q, r) = fig5();
        let pg = PunctuationGraph::of_query(&q, &r);
        let reasons = pg.edge_reasons(StreamId(1), StreamId(0));
        assert_eq!(reasons.len(), 1);
        assert_eq!(reasons[0].punctuatable_on.stream, StreamId(0));
        assert_eq!(q.catalog().display_ref(reasons[0].punctuatable_on), "S1.B");
    }

    #[test]
    fn fig5_binary_suboperators_are_not_strongly_connected() {
        // §4.1.2: for the Fig. 5 CJQ no binary-join tree is safe because no
        // 2-stream sub-operator has a strongly connected PG.
        let (q, r) = fig5();
        for pair in [
            [StreamId(0), StreamId(1)],
            [StreamId(1), StreamId(2)],
            [StreamId(0), StreamId(2)],
        ] {
            let pg = PunctuationGraph::over(&q, &r, &pair);
            assert!(
                !pg.is_strongly_connected(),
                "pair {pair:?} unexpectedly purgeable"
            );
            assert_eq!(pg.edge_count(), 1, "each pair has exactly one direction");
        }
    }

    #[test]
    fn missing_scheme_removes_edges() {
        let (q, _) = fig5();
        // Punctuations only on bidder-ids (irrelevant attribute): no edges.
        let r = SchemeSet::from_schemes([PunctuationScheme::on(0, &[0]).unwrap()]);
        // S1.A *is* a join attribute (S3.A = S1.A), so one edge appears...
        let pg = PunctuationGraph::of_query(&q, &r);
        assert!(pg.has_edge(StreamId(2), StreamId(0)));
        assert_eq!(pg.edge_count(), 1);
        assert!(!pg.is_strongly_connected());
        assert!(!pg.reaches_all(StreamId(0)));
        // ...and reachability from S3 only covers {S3, S1}? No: the edge goes
        // S3 -> S1, so S3 reaches S1 but not S2.
        assert_eq!(
            pg.reachable_from(StreamId(2)),
            vec![StreamId(0), StreamId(2)]
        );
    }

    #[test]
    fn multi_attribute_schemes_do_not_create_plain_edges() {
        let (q, _) = fig5();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(0, &[0, 1]).unwrap(), // multi-attribute
        ]);
        let pg = PunctuationGraph::of_query(&q, &r);
        assert_eq!(pg.edge_count(), 0);
    }

    #[test]
    fn conjunctive_predicates_one_punctuatable_attr_suffices() {
        // §3.1: with conjunctive predicates between two streams, one
        // punctuatable attribute among the predicate attrs is enough.
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "B"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 0, 1, 0).unwrap(),
                JoinPredicate::between(0, 1, 1, 1).unwrap(),
            ],
        )
        .unwrap();
        let r = SchemeSet::from_schemes([
            PunctuationScheme::on(0, &[0]).unwrap(),
            PunctuationScheme::on(1, &[1]).unwrap(),
        ]);
        let pg = PunctuationGraph::of_query(&q, &r);
        assert!(pg.has_edge(StreamId(1), StreamId(0))); // via A
        assert!(pg.has_edge(StreamId(0), StreamId(1))); // via B
        assert!(pg.is_strongly_connected());
    }

    #[test]
    fn over_ignores_unknown_and_duplicate_streams() {
        let (q, r) = fig5();
        let pg = PunctuationGraph::over(&q, &r, &[StreamId(0), StreamId(0), StreamId(1)]);
        assert_eq!(pg.streams(), &[StreamId(0), StreamId(1)]);
        assert!(pg.index_of(StreamId(2)).is_none());
        assert!(!pg.has_edge(StreamId(2), StreamId(1)));
        assert!(pg.edge_reasons(StreamId(2), StreamId(1)).is_empty());
        assert!(pg.reachable_from(StreamId(2)).is_empty());
        assert!(!pg.reaches_all(StreamId(2)));
    }

    #[test]
    fn single_stream_graph_is_trivially_connected() {
        let (q, r) = fig5();
        let pg = PunctuationGraph::over(&q, &r, &[StreamId(0)]);
        assert!(pg.is_strongly_connected());
        assert!(pg.reaches_all(StreamId(0)));
    }
}
