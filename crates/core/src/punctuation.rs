//! Punctuations represented as data (paper §2.3, after Tucker et al. \[12\]).
//!
//! A punctuation for a stream `S(A_1, ..., A_n)` is a set of *patterns*, one per
//! attribute. A pattern is either the wildcard `*` (no constraint) or a constant
//! (an equal-value constraint). The punctuation asserts that **no future tuple**
//! of the stream matches all its patterns.

use std::fmt;

use crate::error::{CoreError, CoreResult};
use crate::schema::{AttrId, StreamId, StreamSchema};
use crate::value::Value;

/// One attribute pattern of a punctuation: wildcard, constant, or an
/// order-based bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// `*`: no constraint on this attribute.
    Wildcard,
    /// An equal-value constraint on this attribute.
    Constant(Value),
    /// `≤ bound`: an order constraint — no future tuple carries a value at
    /// or below the bound. This is the *heartbeat/watermark* pattern of
    /// Srivastava & Widom \[11\]: a single punctuation retires an infinite
    /// prefix of an ordered domain (timestamps, sequence numbers).
    UpTo(Value),
}

impl Pattern {
    /// Whether a concrete value satisfies this pattern.
    #[must_use]
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Pattern::Wildcard => true,
            Pattern::Constant(c) => c == v,
            Pattern::UpTo(b) => v <= b,
        }
    }

    /// Whether this pattern is at least as general as `other`
    /// (`*` subsumes everything; a constant subsumes only itself; a bound
    /// subsumes every constant/bound at or below it).
    #[must_use]
    pub fn subsumes(&self, other: &Pattern) -> bool {
        match (self, other) {
            (Pattern::Wildcard, _) => true,
            (Pattern::Constant(a), Pattern::Constant(b)) => a == b,
            (Pattern::UpTo(a), Pattern::Constant(b)) | (Pattern::UpTo(a), Pattern::UpTo(b)) => {
                b <= a
            }
            (Pattern::Constant(_), _) | (Pattern::UpTo(_), Pattern::Wildcard) => false,
        }
    }

    /// The constant carried by this pattern, if any (equality patterns only).
    #[must_use]
    pub fn constant(&self) -> Option<&Value> {
        match self {
            Pattern::Wildcard | Pattern::UpTo(_) => None,
            Pattern::Constant(v) => Some(v),
        }
    }

    /// The bound carried by an [`Pattern::UpTo`] pattern, if any.
    #[must_use]
    pub fn bound(&self) -> Option<&Value> {
        match self {
            Pattern::UpTo(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Wildcard => write!(f, "*"),
            Pattern::Constant(v) => write!(f, "{v}"),
            Pattern::UpTo(v) => write!(f, "≤{v}"),
        }
    }
}

impl From<Value> for Pattern {
    fn from(v: Value) -> Self {
        Pattern::Constant(v)
    }
}

/// A punctuation: "no future tuple of `stream` matches all `patterns`".
///
/// For the auction example, "no more bids for item 1" on
/// `bid(bidderid, itemid, increase)` is `(*, 1, *)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Punctuation {
    /// The stream this punctuation constrains.
    pub stream: StreamId,
    /// One pattern per attribute of the stream's schema.
    pub patterns: Vec<Pattern>,
}

impl Punctuation {
    /// Builds a heartbeat punctuation: all-wildcard except `attr ≤ bound`.
    #[must_use]
    pub fn heartbeat(stream: StreamId, arity: usize, attr: AttrId, bound: Value) -> Self {
        let mut patterns = vec![Pattern::Wildcard; arity];
        patterns[attr.0] = Pattern::UpTo(bound);
        Punctuation { stream, patterns }
    }

    /// Builds a punctuation that is all-wildcard except for the given
    /// `(attribute, value)` constants.
    #[must_use]
    pub fn with_constants(stream: StreamId, arity: usize, constants: &[(AttrId, Value)]) -> Self {
        let mut patterns = vec![Pattern::Wildcard; arity];
        for (attr, value) in constants {
            patterns[attr.0] = Pattern::Constant(*value);
        }
        Punctuation { stream, patterns }
    }

    /// Number of patterns (must equal the stream's arity).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.patterns.len()
    }

    /// Validates that the punctuation fits the given schema.
    pub fn validate(&self, schema: &StreamSchema) -> CoreResult<()> {
        if self.patterns.len() != schema.arity() {
            return Err(CoreError::InvalidPunctuation(format!(
                "punctuation has {} patterns but stream `{}` has arity {}",
                self.patterns.len(),
                schema.name(),
                schema.arity()
            )));
        }
        Ok(())
    }

    /// Whether a tuple (as a value slice in schema order) matches the
    /// punctuation, i.e. the punctuation forbids such tuples in the future.
    #[must_use]
    pub fn matches(&self, tuple: &[Value]) -> bool {
        self.patterns.len() == tuple.len()
            && self.patterns.iter().zip(tuple).all(|(p, v)| p.matches(v))
    }

    /// The attributes constrained with constants (the non-`*` positions).
    pub fn constant_attrs(&self) -> impl Iterator<Item = (AttrId, &Value)> {
        self.patterns
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.constant().map(|v| (AttrId(i), v)))
    }

    /// Whether this punctuation subsumes `other` (forbids at least as much):
    /// same stream and every pattern subsumes the corresponding one.
    #[must_use]
    pub fn subsumes(&self, other: &Punctuation) -> bool {
        self.stream == other.stream
            && self.patterns.len() == other.patterns.len()
            && self
                .patterns
                .iter()
                .zip(&other.patterns)
                .all(|(a, b)| a.subsumes(b))
    }
}

impl fmt::Display for Punctuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.stream)?;
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid_punct(itemid: i64) -> Punctuation {
        // bid(bidderid, itemid, increase): (*, itemid, *)
        Punctuation::with_constants(StreamId(1), 3, &[(AttrId(1), Value::Int(itemid))])
    }

    #[test]
    fn pattern_matching() {
        assert!(Pattern::Wildcard.matches(&Value::Int(9)));
        assert!(Pattern::Constant(Value::Int(1)).matches(&Value::Int(1)));
        assert!(!Pattern::Constant(Value::Int(1)).matches(&Value::Int(2)));
    }

    #[test]
    fn pattern_subsumption() {
        let w = Pattern::Wildcard;
        let c1 = Pattern::Constant(Value::Int(1));
        let c2 = Pattern::Constant(Value::Int(2));
        assert!(w.subsumes(&c1));
        assert!(w.subsumes(&w));
        assert!(c1.subsumes(&c1));
        assert!(!c1.subsumes(&c2));
        assert!(!c1.subsumes(&w));
    }

    #[test]
    fn punctuation_matches_only_constrained_tuples() {
        let p = bid_punct(1);
        assert!(p.matches(&[Value::Int(77), Value::Int(1), Value::Int(5)]));
        assert!(!p.matches(&[Value::Int(77), Value::Int(2), Value::Int(5)]));
        // Arity mismatch never matches.
        assert!(!p.matches(&[Value::Int(1)]));
    }

    #[test]
    fn punctuation_constant_attrs() {
        let p = bid_punct(4);
        let consts: Vec<_> = p.constant_attrs().collect();
        assert_eq!(consts, vec![(AttrId(1), &Value::Int(4))]);
    }

    #[test]
    fn punctuation_subsumption() {
        let narrow = Punctuation::with_constants(
            StreamId(1),
            3,
            &[(AttrId(1), Value::Int(1)), (AttrId(0), Value::Int(7))],
        );
        let wide = bid_punct(1);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(wide.subsumes(&wide));
        // Different streams never subsume.
        let other = Punctuation::with_constants(StreamId(0), 3, &[(AttrId(1), Value::Int(1))]);
        assert!(!wide.subsumes(&other));
    }

    #[test]
    fn validate_against_schema() {
        let schema = StreamSchema::new("bid", ["bidderid", "itemid", "increase"]).unwrap();
        assert!(bid_punct(1).validate(&schema).is_ok());
        let bad = Punctuation {
            stream: StreamId(1),
            patterns: vec![Pattern::Wildcard; 2],
        };
        assert!(bad.validate(&schema).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(bid_punct(1).to_string(), "S2(*, 1, *)");
    }

    #[test]
    fn upto_patterns_match_prefixes() {
        let p = Pattern::UpTo(Value::Int(10));
        assert!(p.matches(&Value::Int(10)));
        assert!(p.matches(&Value::Int(-5)));
        assert!(!p.matches(&Value::Int(11)));
        assert!(p.constant().is_none());
        assert_eq!(p.bound(), Some(&Value::Int(10)));
    }

    #[test]
    fn upto_subsumption_is_order_based() {
        let big = Pattern::UpTo(Value::Int(10));
        let small = Pattern::UpTo(Value::Int(5));
        assert!(big.subsumes(&small));
        assert!(!small.subsumes(&big));
        assert!(big.subsumes(&Pattern::Constant(Value::Int(7))));
        assert!(!big.subsumes(&Pattern::Constant(Value::Int(11))));
        assert!(!big.subsumes(&Pattern::Wildcard));
        assert!(Pattern::Wildcard.subsumes(&big));
    }

    #[test]
    fn heartbeat_constructor_and_matching() {
        let hb = Punctuation::heartbeat(StreamId(0), 3, AttrId(1), Value::Int(100));
        assert_eq!(hb.to_string(), "S1(*, ≤100, *)");
        assert!(hb.matches(&[Value::Int(9), Value::Int(100), Value::Int(1)]));
        assert!(!hb.matches(&[Value::Int(9), Value::Int(101), Value::Int(1)]));
        // Heartbeats have no constant attrs (they carry a bound instead).
        assert_eq!(hb.constant_attrs().count(), 0);
    }
}
