//! Fast non-cryptographic hashing for hot-path hash maps.
//!
//! Stream-join probe indexes, punctuation-store entries, and purge-chain
//! scratch maps hash [`crate::value::Value`] keys on every element. The
//! standard library's SipHash is DoS-resistant but ~5–10× slower than needed
//! for in-process, non-adversarial keys. This module implements the Fx hash
//! function (the multiply-xor-rotate hash used by rustc's `FxHashMap`)
//! locally, since the build environment cannot pull `rustc-hash`/`ahash`
//! from a registry.
//!
//! Use [`FxHashMap`]/[`FxHashSet`] wherever the keys come from stream data;
//! keep `std::collections::HashMap` for anything keyed by external input
//! crossing a trust boundary (nothing in this workspace currently is).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative constant from the Fibonacci-hashing family (same as rustc's).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: folds machine words with `rotate ^ word * SEED`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(word.try_into().unwrap())));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the Fx hash function.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the Fx hash function.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash one value with the Fx function (used for shard routing).
#[inline]
#[must_use]
pub fn fx_hash_one<T: Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_eq!(fx_hash_one(&"abc"), fx_hash_one(&"abc"));
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
    }

    #[test]
    fn maps_behave_like_std() {
        let mut m: FxHashMap<&str, i32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        m.insert("a", 3);
        assert_eq!(m.len(), 2);
        assert_eq!(m["a"], 3);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i % 97);
        }
        assert_eq!(s.len(), 97);
    }

    #[test]
    fn byte_stream_chunking_is_consistent() {
        // write() must consume any length without panicking and stay
        // deterministic across calls.
        for len in 0..32 {
            let bytes: Vec<u8> = (0..len).collect();
            let mut h1 = FxHasher::default();
            h1.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish());
        }
    }
}
