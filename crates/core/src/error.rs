//! Typed errors for query/scheme construction and safety checking.

use std::fmt;

/// Errors produced while building catalogs, queries, schemes, or plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A stream schema was malformed.
    InvalidSchema {
        /// The offending stream's name.
        stream: String,
        /// Human-readable cause.
        reason: String,
    },
    /// A stream name did not resolve.
    UnknownStream(String),
    /// An attribute name did not resolve within its stream.
    UnknownAttribute {
        /// The stream searched.
        stream: String,
        /// The attribute that was not found.
        attr: String,
    },
    /// A join predicate was malformed (self-join on one stream, bad refs, ...).
    InvalidPredicate(String),
    /// A punctuation scheme was malformed.
    InvalidScheme(String),
    /// A punctuation did not instantiate its scheme correctly.
    InvalidPunctuation(String),
    /// A query failed validation (empty, disconnected join graph, ...).
    InvalidQuery(String),
    /// An execution plan was malformed (wrong leaves, unary joins, ...).
    InvalidPlan(String),
}

/// Convenience alias used throughout the crate.
pub type CoreResult<T> = Result<T, CoreError>;

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSchema { stream, reason } => {
                write!(f, "invalid schema for stream `{stream}`: {reason}")
            }
            CoreError::UnknownStream(s) => write!(f, "unknown stream `{s}`"),
            CoreError::UnknownAttribute { stream, attr } => {
                write!(f, "unknown attribute `{attr}` on stream `{stream}`")
            }
            CoreError::InvalidPredicate(r) => write!(f, "invalid join predicate: {r}"),
            CoreError::InvalidScheme(r) => write!(f, "invalid punctuation scheme: {r}"),
            CoreError::InvalidPunctuation(r) => write!(f, "invalid punctuation: {r}"),
            CoreError::InvalidQuery(r) => write!(f, "invalid query: {r}"),
            CoreError::InvalidPlan(r) => write!(f, "invalid plan: {r}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::UnknownAttribute {
            stream: "bid".into(),
            attr: "foo".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("bid") && msg.contains("foo"));
        assert!(CoreError::UnknownStream("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CoreError::InvalidQuery("q".into()));
    }
}
