//! The join graph of a join operator (paper Definition 6): a connected,
//! undirected, labeled graph with one vertex per input stream and one edge per
//! stream pair that shares at least one join predicate.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::query::{Cjq, JoinPredicate};
use crate::schema::StreamId;

/// Definition 6 join graph over a set of streams.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    nodes: Vec<StreamId>,
    /// Edges keyed by node *positions* (indices into `nodes`), each carrying
    /// the conjunctive predicate group labeling the edge.
    edges: HashMap<(usize, usize), Vec<JoinPredicate>>,
    pos: HashMap<StreamId, usize>,
}

impl JoinGraph {
    /// Builds the join graph of the whole query (the query as one MJoin).
    #[must_use]
    pub fn of_query(query: &Cjq) -> Self {
        JoinGraph::over(query, &query.stream_ids().collect::<Vec<_>>())
    }

    /// Builds the join graph restricted to `streams` (for sub-operators).
    /// Predicates with an endpoint outside `streams` are ignored.
    #[must_use]
    pub fn over(query: &Cjq, streams: &[StreamId]) -> Self {
        let nodes: Vec<StreamId> = streams.to_vec();
        let pos: HashMap<StreamId, usize> =
            nodes.iter().enumerate().map(|(i, s)| (*s, i)).collect();
        let mut edges: HashMap<(usize, usize), Vec<JoinPredicate>> = HashMap::new();
        for p in query.predicates() {
            let (a, b) = p.streams();
            if let (Some(&ia), Some(&ib)) = (pos.get(&a), pos.get(&b)) {
                let key = if ia < ib { (ia, ib) } else { (ib, ia) };
                edges.entry(key).or_default().push(*p);
            }
        }
        JoinGraph { nodes, edges, pos }
    }

    /// The vertices (streams) of the graph.
    #[must_use]
    pub fn nodes(&self) -> &[StreamId] {
        &self.nodes
    }

    /// Number of vertices.
    #[must_use]
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Number of (undirected) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The predicates labeling the edge between `a` and `b` (empty if absent).
    #[must_use]
    pub fn predicates_between(&self, a: StreamId, b: StreamId) -> &[JoinPredicate] {
        match (self.pos.get(&a), self.pos.get(&b)) {
            (Some(&ia), Some(&ib)) => {
                let key = if ia < ib { (ia, ib) } else { (ib, ia) };
                self.edges.get(&key).map_or(&[], Vec::as_slice)
            }
            _ => &[],
        }
    }

    /// Whether streams `a` and `b` share an edge.
    #[must_use]
    pub fn adjacent(&self, a: StreamId, b: StreamId) -> bool {
        !self.predicates_between(a, b).is_empty()
    }

    /// Neighbors of stream `s` in the join graph.
    #[must_use]
    pub fn neighbors(&self, s: StreamId) -> Vec<StreamId> {
        let Some(&is) = self.pos.get(&s) else {
            return Vec::new();
        };
        let mut out: Vec<StreamId> = self
            .edges
            .keys()
            .filter_map(|&(a, b)| {
                if a == is {
                    Some(self.nodes[b])
                } else if b == is {
                    Some(self.nodes[a])
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether the graph is connected (Definition 6 requires it).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut seen = HashSet::new();
        let mut stack = vec![self.nodes[0]];
        seen.insert(self.nodes[0]);
        while let Some(s) = stack.pop() {
            for n in self.neighbors(s) {
                if seen.insert(n) {
                    stack.push(n);
                }
            }
        }
        seen.len() == self.nodes.len()
    }

    /// Whether the graph is acyclic (a tree): connected with `n - 1` edges.
    #[must_use]
    pub fn is_tree(&self) -> bool {
        self.is_connected() && self.edge_count() + 1 == self.n()
    }

    /// A witness cycle if the graph has one: the streams of a simple cycle in
    /// DFS-discovery order, starting from the back-edge's ancestor endpoint.
    /// Returns `None` for trees (and for disconnected forests without cycles).
    ///
    /// Cyclic join graphs are exactly where a worst-case-optimal (prefix-
    /// extension) execution beats every binary join tree: a binary plan over
    /// a cycle must materialize an intermediate unconstrained by the closing
    /// edge. The witness is deterministic — DFS visits nodes in `nodes` order
    /// and neighbors in sorted order — so diagnostics and tests can assert on
    /// it.
    #[must_use]
    pub fn cycle_witness(&self) -> Option<Vec<StreamId>> {
        // Iterative DFS with parent tracking over every component.
        let n = self.n();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut color = vec![0u8; n]; // 0 unseen, 1 on stack, 2 done
        for root in 0..n {
            if color[root] != 0 {
                continue;
            }
            // (node, parent) frames; re-push the node to mark post-order.
            let mut stack: Vec<(usize, Option<usize>)> = vec![(root, None)];
            while let Some(&(u, p)) = stack.last() {
                if color[u] == 0 {
                    color[u] = 1;
                    parent[u] = p;
                    for v in self.neighbors(self.nodes[u]) {
                        let iv = self.pos[&v];
                        if color[iv] == 0 {
                            stack.push((iv, Some(u)));
                        } else if color[iv] == 1 && Some(iv) != p {
                            // Back edge u → iv: walk the parent chain from u
                            // up to iv to recover the cycle.
                            let mut path = vec![u];
                            let mut cur = u;
                            while cur != iv {
                                cur = parent[cur].expect("iv is an ancestor of u");
                                path.push(cur);
                            }
                            path.reverse(); // ancestor (iv) first
                            return Some(path.into_iter().map(|i| self.nodes[i]).collect());
                        }
                    }
                } else {
                    if color[u] == 1 {
                        color[u] = 2;
                    }
                    stack.pop();
                }
            }
        }
        None
    }

    /// A BFS spanning tree rooted at `root`, as `(child, parent)` pairs in BFS
    /// order (§3.2.1 derives the chained purge strategy along such a tree).
    ///
    /// Returns `None` if `root` is not a vertex or the graph is disconnected.
    #[must_use]
    pub fn spanning_tree(&self, root: StreamId) -> Option<Vec<(StreamId, StreamId)>> {
        if !self.pos.contains_key(&root) {
            return None;
        }
        let mut parent: Vec<(StreamId, StreamId)> = Vec::new();
        let mut seen = HashSet::new();
        seen.insert(root);
        let mut queue = VecDeque::from([root]);
        while let Some(s) = queue.pop_front() {
            for n in self.neighbors(s) {
                if seen.insert(n) {
                    parent.push((n, s));
                    queue.push_back(n);
                }
            }
        }
        if seen.len() == self.nodes.len() {
            Some(parent)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::JoinPredicate;
    use crate::schema::{Catalog, StreamSchema};

    fn fig3() -> Cjq {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["C", "A"]).unwrap());
        Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 1, 1, 0).unwrap(),
                JoinPredicate::between(1, 1, 2, 0).unwrap(),
            ],
        )
        .unwrap()
    }

    /// Figure 3 plus the extra cyclic predicate S1.A = S3.A (§3.2.1 end).
    fn fig3_cyclic() -> Cjq {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["B", "C"]).unwrap());
        cat.add_stream(StreamSchema::new("S3", ["C", "A"]).unwrap());
        Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 1, 1, 0).unwrap(),
                JoinPredicate::between(1, 1, 2, 0).unwrap(),
                JoinPredicate::between(0, 0, 2, 1).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig3_join_graph_shape() {
        let jg = JoinGraph::of_query(&fig3());
        assert_eq!(jg.n(), 3);
        assert_eq!(jg.edge_count(), 2);
        assert!(jg.adjacent(StreamId(0), StreamId(1)));
        assert!(jg.adjacent(StreamId(1), StreamId(2)));
        assert!(!jg.adjacent(StreamId(0), StreamId(2)));
        assert!(jg.is_connected());
        assert!(jg.is_tree());
    }

    #[test]
    fn cyclic_join_graph_is_not_tree() {
        let jg = JoinGraph::of_query(&fig3_cyclic());
        assert_eq!(jg.edge_count(), 3);
        assert!(jg.is_connected());
        assert!(!jg.is_tree());
        assert!(jg.adjacent(StreamId(0), StreamId(2)));
    }

    #[test]
    fn cycle_witness_on_trees_and_cycles() {
        assert_eq!(JoinGraph::of_query(&fig3()).cycle_witness(), None);
        let jg = JoinGraph::of_query(&fig3_cyclic());
        let cycle = jg.cycle_witness().expect("triangle has a cycle");
        // A simple cycle: at least 3 distinct nodes, consecutive (and
        // wrapping) pairs adjacent.
        assert!(cycle.len() >= 3);
        let mut distinct = cycle.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), cycle.len());
        for i in 0..cycle.len() {
            assert!(jg.adjacent(cycle[i], cycle[(i + 1) % cycle.len()]));
        }
        // Deterministic witness for the triangle.
        assert_eq!(
            jg.cycle_witness(),
            Some(vec![StreamId(0), StreamId(2), StreamId(1)])
        );
    }

    #[test]
    fn cycle_witness_respects_restricted_graphs() {
        let q = fig3_cyclic();
        // Any two streams of the triangle form a single edge: acyclic.
        let jg = JoinGraph::over(&q, &[StreamId(0), StreamId(1)]);
        assert_eq!(jg.cycle_witness(), None);
    }

    #[test]
    fn neighbors_sorted() {
        let jg = JoinGraph::of_query(&fig3_cyclic());
        assert_eq!(jg.neighbors(StreamId(1)), vec![StreamId(0), StreamId(2)]);
        assert_eq!(jg.neighbors(StreamId(9)), Vec::<StreamId>::new());
    }

    #[test]
    fn spanning_tree_from_each_root() {
        let jg = JoinGraph::of_query(&fig3());
        // From S1: S2 hangs off S1, S3 hangs off S2.
        let t = jg.spanning_tree(StreamId(0)).unwrap();
        assert_eq!(
            t,
            vec![(StreamId(1), StreamId(0)), (StreamId(2), StreamId(1))]
        );
        // From S2: both others are direct children.
        let t = jg.spanning_tree(StreamId(1)).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|&(_, p)| p == StreamId(1)));
        assert!(jg.spanning_tree(StreamId(7)).is_none());
    }

    #[test]
    fn restricted_join_graph_drops_external_predicates() {
        let q = fig3();
        let jg = JoinGraph::over(&q, &[StreamId(0), StreamId(1)]);
        assert_eq!(jg.n(), 2);
        assert_eq!(jg.edge_count(), 1);
        let jg13 = JoinGraph::over(&q, &[StreamId(0), StreamId(2)]);
        assert_eq!(jg13.edge_count(), 0);
        assert!(!jg13.is_connected());
        assert!(jg13.spanning_tree(StreamId(0)).is_none());
    }

    #[test]
    fn conjunctive_predicates_share_one_edge() {
        let mut cat = Catalog::new();
        cat.add_stream(StreamSchema::new("S1", ["A", "B"]).unwrap());
        cat.add_stream(StreamSchema::new("S2", ["A", "B"]).unwrap());
        let q = Cjq::new(
            cat,
            vec![
                JoinPredicate::between(0, 0, 1, 0).unwrap(),
                JoinPredicate::between(0, 1, 1, 1).unwrap(),
            ],
        )
        .unwrap();
        let jg = JoinGraph::of_query(&q);
        assert_eq!(jg.edge_count(), 1);
        assert_eq!(jg.predicates_between(StreamId(0), StreamId(1)).len(), 2);
    }
}
