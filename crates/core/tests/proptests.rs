//! Property-based tests for the safety-checking theory.
//!
//! The most important property is Theorem 5: the Definition 11 transformation
//! (TPG) must agree with the Definition 9/10 reachability fixpoint (GPG) on
//! every instance. The tests below generate random connected join queries and
//! random scheme sets (single- and multi-attribute) and check the two
//! procedures against each other, plus a collection of structural invariants.

use proptest::prelude::*;

use cjq_core::gpg::GeneralizedPunctuationGraph;
use cjq_core::pg::PunctuationGraph;
use cjq_core::plan::{check_plan, Plan};
use cjq_core::purge_plan;
use cjq_core::query::{Cjq, JoinPredicate};
use cjq_core::safety;
use cjq_core::schema::{AttrId, Catalog, StreamId, StreamSchema};
use cjq_core::scheme::{PunctuationScheme, SchemeSet};
use cjq_core::tpg;

/// A randomly generated, always-valid test instance.
#[derive(Debug, Clone)]
struct Instance {
    query: Cjq,
    schemes: SchemeSet,
}

/// Strategy: a connected query over `n` streams with arities in 2..=4,
/// predicates formed from a random spanning tree plus `extra` random edges,
/// and a random scheme set mixing single- and multi-attribute schemes.
fn instance(max_streams: usize) -> impl Strategy<Value = Instance> {
    (2..=max_streams)
        .prop_flat_map(|n| {
            let arities = prop::collection::vec(2..=4usize, n);
            (Just(n), arities)
        })
        .prop_flat_map(|(n, arities)| {
            // Spanning-tree parent choices + attribute picks, plus extra edges.
            let tree_choices = prop::collection::vec((any::<prop::sample::Index>(),), n - 1);
            let extra_edges = prop::collection::vec(
                (any::<prop::sample::Index>(), any::<prop::sample::Index>()),
                0..=n,
            );
            let attr_seeds = prop::collection::vec(any::<u64>(), 2 * n + 2);
            let scheme_seeds = prop::collection::vec(
                (any::<prop::sample::Index>(), any::<u64>(), 1..=2usize),
                0..=2 * n,
            );
            (
                Just(arities),
                tree_choices,
                extra_edges,
                attr_seeds,
                scheme_seeds,
            )
        })
        .prop_map(
            |(arities, tree_choices, extra_edges, attr_seeds, scheme_seeds)| {
                build_instance(
                    &arities,
                    &tree_choices,
                    &extra_edges,
                    &attr_seeds,
                    &scheme_seeds,
                )
            },
        )
}

fn build_instance(
    arities: &[usize],
    tree_choices: &[(prop::sample::Index,)],
    extra_edges: &[(prop::sample::Index, prop::sample::Index)],
    attr_seeds: &[u64],
    scheme_seeds: &[(prop::sample::Index, u64, usize)],
) -> Instance {
    let n = arities.len();
    let mut cat = Catalog::new();
    for (i, &a) in arities.iter().enumerate() {
        let names: Vec<String> = (0..a).map(|j| format!("a{j}")).collect();
        cat.add_stream(StreamSchema::new(format!("S{}", i + 1), names).unwrap());
    }
    let mut seed_iter = attr_seeds.iter().copied().cycle();
    let mut pick_attr =
        |stream: usize| AttrId(seed_iter.next().unwrap() as usize % arities[stream]);

    let mut predicates = Vec::new();
    // Random spanning tree: stream i (1..n) attaches to a random earlier one.
    for (i, (parent_idx,)) in tree_choices.iter().enumerate() {
        let child = i + 1;
        let parent = parent_idx.index(child); // in 0..child
        let p = JoinPredicate::new(
            cjq_core::schema::AttrRef {
                stream: StreamId(parent),
                attr: pick_attr(parent),
            },
            cjq_core::schema::AttrRef {
                stream: StreamId(child),
                attr: pick_attr(child),
            },
        )
        .unwrap();
        if !predicates.contains(&p) {
            predicates.push(p);
        }
    }
    // Extra random edges.
    for (ia, ib) in extra_edges {
        let a = ia.index(n);
        let b = ib.index(n);
        if a == b {
            continue;
        }
        let p = JoinPredicate::new(
            cjq_core::schema::AttrRef {
                stream: StreamId(a),
                attr: pick_attr(a),
            },
            cjq_core::schema::AttrRef {
                stream: StreamId(b),
                attr: pick_attr(b),
            },
        )
        .unwrap();
        if !predicates.contains(&p) {
            predicates.push(p);
        }
    }
    let query = Cjq::new(cat, predicates).expect("spanning tree keeps the query connected");

    let mut schemes = SchemeSet::new();
    for (stream_idx, seed, arity) in scheme_seeds {
        let stream = stream_idx.index(n);
        let max = arities[stream];
        let take = (*arity).min(max);
        let first = *seed as usize % max;
        let attrs: Vec<usize> = (0..take).map(|k| (first + k) % max).collect();
        schemes.add(PunctuationScheme::on(stream, &attrs).unwrap());
    }
    Instance { query, schemes }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Tarjan SCC agrees with the definition: two nodes share a component
    /// iff they are mutually reachable; the condensation is acyclic.
    #[test]
    fn tarjan_scc_matches_mutual_reachability(
        n in 1usize..12,
        edges in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..40),
    ) {
        use cjq_core::graph::DiGraph;
        let mut g = DiGraph::new(n);
        for (a, b) in &edges {
            g.add_edge(a.index(n), b.index(n));
        }
        let (comp_of, cg) = g.condensation();
        for u in 0..n {
            let ru = g.reachable_from(u);
            for v in 0..n {
                let mutual = ru.contains(&v) && g.reachable_from(v).contains(&u);
                prop_assert_eq!(comp_of[u] == comp_of[v], mutual, "{} vs {}", u, v);
            }
        }
        // Condensation must be a DAG: no component reaches itself through
        // a nonempty path (self-loops were contracted away).
        for c in 0..cg.n() {
            for &succ in cg.successors(c) {
                prop_assert!(
                    !cg.reachable_from(succ).contains(&c) || succ == c,
                    "cycle through component {c}"
                );
            }
        }
    }

    /// Theorem 5: TPG single-node iff GPG strongly connected.
    #[test]
    fn theorem5_tpg_agrees_with_gpg_fixpoint(inst in instance(6)) {
        let gpg_safe =
            GeneralizedPunctuationGraph::of_query(&inst.query, &inst.schemes).is_strongly_connected();
        let tpg_safe = tpg::transform_query(&inst.query, &inst.schemes).is_single_node();
        prop_assert_eq!(gpg_safe, tpg_safe, "query: {:?}", inst);
    }

    /// With single-attribute schemes only, the plain PG check (Theorem 2) and
    /// the generalized machinery (Theorem 4) must agree.
    #[test]
    fn simple_schemes_pg_equals_gpg(inst in instance(6)) {
        let simple = SchemeSet::from_schemes(
            inst.schemes.schemes().iter().filter(|s| s.arity() == 1).cloned(),
        );
        let pg_safe = PunctuationGraph::of_query(&inst.query, &simple).is_strongly_connected();
        let gpg_safe =
            GeneralizedPunctuationGraph::of_query(&inst.query, &simple).is_strongly_connected();
        prop_assert_eq!(pg_safe, gpg_safe);
        prop_assert_eq!(pg_safe, safety::is_query_safe(&inst.query, &simple));
    }

    /// Adding punctuation schemes can only help: a safe query stays safe and
    /// per-stream purgeability never shrinks.
    #[test]
    fn schemes_are_monotone(inst in instance(5), extra_stream in any::<prop::sample::Index>()) {
        let before = safety::check_query(&inst.query, &inst.schemes);
        let mut bigger = inst.schemes.clone();
        let n = inst.query.n_streams();
        let s = extra_stream.index(n);
        let arity = inst.query.catalog().schema(StreamId(s)).unwrap().arity();
        bigger.add(PunctuationScheme::on(s, &[0 % arity]).unwrap());
        let after = safety::check_query(&inst.query, &bigger);
        for (b, a) in before.per_stream.iter().zip(&after.per_stream) {
            prop_assert!(
                !b.purgeable || a.purgeable,
                "stream {:?} lost purgeability after adding a scheme",
                b.stream
            );
        }
        prop_assert!(!before.safe || after.safe);
    }

    /// A purge recipe exists exactly for purgeable streams, covers every other
    /// stream exactly once, and respects dependency order.
    #[test]
    fn recipes_match_purgeability(inst in instance(6)) {
        let streams: Vec<StreamId> = inst.query.stream_ids().collect();
        for &s in &streams {
            let purgeable = safety::stream_purgeable(&inst.query, &inst.schemes, &streams, s);
            let recipe = purge_plan::derive_recipe(&inst.query, &inst.schemes, &streams, s);
            prop_assert_eq!(purgeable, recipe.is_some());
            if let Some(recipe) = recipe {
                let mut known = vec![s];
                for step in &recipe.steps {
                    for b in &step.bindings {
                        prop_assert!(known.contains(&b.source));
                        // Each binding corresponds to an actual predicate.
                        let exists = inst.query.predicates_on(step.target).any(|p| {
                            p.endpoint_on(step.target).map(|r| r.attr) == Some(b.target_attr)
                                && p.endpoint_opposite(step.target)
                                    == Some(cjq_core::schema::AttrRef {
                                        stream: b.source,
                                        attr: b.source_attr,
                                    })
                        });
                        prop_assert!(exists, "binding without predicate: {:?}", b);
                    }
                    prop_assert!(!known.contains(&step.target), "duplicate step target");
                    known.push(step.target);
                }
                known.sort_unstable();
                prop_assert_eq!(known, streams.clone());
            }
        }
    }

    /// Definition 3 coherence: the single-MJoin plan is safe iff the query is
    /// safe, and any safe plan implies query safety.
    #[test]
    fn plan_safety_implies_query_safety(inst in instance(5), perm_seed in any::<u64>()) {
        let q_safe = safety::is_query_safe(&inst.query, &inst.schemes);
        let mjoin = Plan::mjoin_all(&inst.query);
        let mjoin_safe = check_plan(&inst.query, &inst.schemes, &mjoin).unwrap().safe;
        prop_assert_eq!(q_safe, mjoin_safe, "Theorem 2/4: MJoin plan == query safety");

        // A random left-deep order (may be rejected as a cross product).
        let n = inst.query.n_streams();
        let mut order: Vec<StreamId> = inst.query.stream_ids().collect();
        let mut s = perm_seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        if n >= 2 {
            let plan = Plan::left_deep(&order);
            if let Ok(verdict) = check_plan(&inst.query, &inst.schemes, &plan) {
                if verdict.safe {
                    prop_assert!(q_safe, "safe plan {} for unsafe query", plan);
                }
            }
        }
    }

    /// The safety report is internally consistent.
    #[test]
    fn report_consistency(inst in instance(6)) {
        let report = safety::check_query(&inst.query, &inst.schemes);
        prop_assert_eq!(report.safe, report.per_stream.iter().all(|p| p.purgeable));
        prop_assert_eq!(report.safe, safety::is_query_safe(&inst.query, &inst.schemes));
        prop_assert_eq!(report.safe, report.witness().is_none());
        for p in &report.per_stream {
            prop_assert_eq!(p.purgeable, p.unreachable.is_empty());
        }
    }

    /// Ordered (heartbeat) schemes license exactly the same safety verdicts
    /// as equality schemes on the same attributes: converting every arity-1
    /// scheme to ordered never changes query safety or per-stream
    /// purgeability.
    #[test]
    fn ordered_schemes_license_the_same_edges(inst in instance(6)) {
        let converted = SchemeSet::from_schemes(inst.schemes.schemes().iter().map(|s| {
            if s.arity() == 1 {
                PunctuationScheme::ordered_on(s.stream.0, s.punctuatable()[0].0).unwrap()
            } else {
                s.clone()
            }
        }));
        prop_assert_eq!(
            safety::is_query_safe(&inst.query, &inst.schemes),
            safety::is_query_safe(&inst.query, &converted)
        );
        let before = safety::check_query(&inst.query, &inst.schemes);
        let after = safety::check_query(&inst.query, &converted);
        for (b, a) in before.per_stream.iter().zip(&after.per_stream) {
            prop_assert_eq!(b.purgeable, a.purgeable);
        }
    }

    /// The TPG transformation terminates within n - 1 merge rounds (the
    /// complexity bound behind the paper's "polynomial time" claim).
    #[test]
    fn tpg_round_bound(inst in instance(7)) {
        let t = tpg::transform_query(&inst.query, &inst.schemes);
        prop_assert!(t.rounds < inst.query.n_streams().max(1));
        prop_assert!(!t.history.is_empty());
    }

    /// Weighted recipe derivation agrees with the unweighted one on
    /// purgeability (it only changes WHICH schemes guard, never WHETHER
    /// guarding is possible), for arbitrary weights.
    #[test]
    fn weighted_recipes_preserve_purgeability(
        inst in instance(6),
        weight_seed in any::<u64>(),
    ) {
        let streams: Vec<StreamId> = inst.query.stream_ids().collect();
        let mut w = weight_seed;
        let weights: Vec<f64> = (0..inst.schemes.len())
            .map(|_| {
                w = w.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((w >> 33) % 100) as f64 + 1.0
            })
            .collect();
        for &s in &streams {
            let plain = purge_plan::derive_recipe(&inst.query, &inst.schemes, &streams, s);
            let weighted = purge_plan::derive_port_recipe_weighted(
                &inst.query, &inst.schemes, &streams, &[s], &weights,
            );
            prop_assert_eq!(plain.is_some(), weighted.is_some());
            if let Some(r) = weighted {
                // Well-formed: dependency order holds.
                let mut known = r.roots.clone();
                for step in &r.steps {
                    for b in &step.bindings {
                        prop_assert!(known.contains(&b.source));
                    }
                    known.push(step.target);
                }
            }
        }
    }

    /// Disjunctive queries with singleton groups coincide with the
    /// conjunctive punctuation-graph check (the disjunctive theory is a
    /// conservative generalization).
    #[test]
    fn disjunctive_singletons_match_conjunctive(inst in instance(6)) {
        use cjq_core::disjunctive::{self, DisjunctiveCjq, DisjunctiveGroup};
        // Only single-attribute schemes participate in both checks.
        let simple = SchemeSet::from_schemes(
            inst.schemes.schemes().iter().filter(|s| s.arity() == 1).cloned(),
        );
        let groups: Vec<DisjunctiveGroup> = inst
            .query
            .predicates()
            .iter()
            .map(|p| DisjunctiveGroup::new(vec![*p]).unwrap())
            .collect();
        let dq = DisjunctiveCjq::new(inst.query.catalog().clone(), groups).unwrap();
        let conj_safe =
            PunctuationGraph::of_query(&inst.query, &simple).is_strongly_connected();
        prop_assert_eq!(disjunctive::is_query_safe(&dq, &simple), conj_safe);
        for s in inst.query.stream_ids() {
            prop_assert_eq!(
                disjunctive::stream_purgeable(&dq, &simple, s),
                PunctuationGraph::of_query(&inst.query, &simple).reaches_all(s)
            );
        }
    }

    /// GPG reachability is monotone in the stream subset: restricting an
    /// operator to fewer streams can only remove reachable targets.
    #[test]
    fn reachability_subset_sanity(inst in instance(6)) {
        let streams: Vec<StreamId> = inst.query.stream_ids().collect();
        let gpg = GeneralizedPunctuationGraph::of_query(&inst.query, &inst.schemes);
        for &s in &streams {
            let r = gpg.reachable_from(s);
            prop_assert!(r.binary_search(&s).is_ok(), "origin always reachable");
            // Trace length == reached count - 1.
            prop_assert_eq!(gpg.reach_trace(s).len() + 1, r.len());
        }
    }
}
