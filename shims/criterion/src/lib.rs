//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace-local
//! crate provides the slice of the criterion 0.5 API the bench targets use:
//! `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId::new`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs one untimed warmup iteration, then
//! `sample_size` timed samples (each a single iteration unless the per-sample
//! time is tiny, in which case iterations are batched), and reports
//! min/median/mean wall-clock time per iteration to stdout. This is a
//! comparison harness, not a statistics suite — good enough to read relative
//! throughput on one machine, which is what the repo's BENCH files record.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_owned(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
    }
}

/// A named set of benchmarks sharing the group's configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F)
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, id.into_benchmark_id());
        run_benchmark(&label, self.criterion.sample_size, f);
    }

    /// Run a parameterized benchmark within this group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F)
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let label = format!("{}/{}", self.group, id.into_benchmark_id());
        run_benchmark(&label, self.criterion.sample_size, |b| f(b, input));
    }

    /// Finish the group (flushes nothing in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `function_name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion into a display label (accepts `&str` and [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The label shown for this benchmark.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the closure; called once per benchmark, it internally runs the
    /// warmup and all samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Untimed warmup, also used to size per-sample batches so that very
        // fast routines are not dominated by timer resolution.
        let warm_start = Instant::now();
        let _ = routine();
        let warm = warm_start.elapsed();
        let batch = if warm < Duration::from_micros(20) {
            (Duration::from_micros(100).as_nanos() / warm.as_nanos().max(1)).clamp(1, 10_000)
                as usize
        } else {
            1
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                let _ = routine();
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples (closure never called Bencher::iter)");
        return;
    }
    bencher.samples.sort_unstable();
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "  {label}: min {:?}  median {:?}  mean {:?}  ({} samples)",
        min,
        median,
        mean,
        bencher.samples.len()
    );
}

/// Define a benchmark group function (both criterion forms supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        let mut calls = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            calls += 1;
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, n| {
            b.iter(|| std::hint::black_box(*n * 2));
            calls += 1;
        });
        group.finish();
        assert_eq!(calls, 2);
    }
}
