//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace-local
//! crate provides the slice of the proptest API the test suites use:
//! `proptest!` / `prop_assert!` / `prop_assert_eq!`, `Strategy` with
//! `prop_map` / `prop_flat_map`, `Just`, `any::<T>()`, integer-range and
//! tuple strategies, `prop::collection::vec`, `prop::sample::Index`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each `#[test]` runs `cases` randomly generated inputs from a
//! deterministic per-test RNG (seeded from the test's module path + name).
//! There is no shrinking — a failing case panics with the assertion message
//! and the case number, which is reproducible because generation is
//! deterministic.

#![warn(missing_docs)]

pub mod test_runner {
    //! Config, RNG, and error types for the case runner.

    use std::fmt;

    /// Per-test configuration (mirror of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case failed.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given reason.
        #[must_use]
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// Alias of [`TestCaseError::fail`] (mirror of upstream `Reject`/`Fail` split).
        #[must_use]
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 RNG used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from a test's fully qualified name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values (mirror of `proptest::strategy::Strategy`,
    /// without shrinking).
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns for it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident/$v:ident),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Generate an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::sample::Index::new(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod sample {
    //! Sampling helpers (mirror of `proptest::sample`).

    /// An opaque index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolve against a collection of `len` items; `len` must be nonzero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    //! Collection strategies (mirror of `proptest::collection`).

    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface (mirror of `proptest::prelude`).

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirror of the `prop` module path used as `prop::collection::vec` etc.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests: each `fn` runs `cases` random inputs drawn from the
/// given strategies. No shrinking; failures report the deterministic case
/// number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    // Closure form: `proptest!(cfg, |(a in strat, b in strat)| { body })`,
    // runnable inside an ordinary `#[test]` fn.
    ($cfg:expr, |($($arg:ident in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let mut __rng = $crate::test_runner::TestRng::from_name(
            concat!(module_path!(), "::", line!()),
        );
        for __case in 0..__cfg.cases {
            $(
                let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
            )+
            let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
            if let ::std::result::Result::Err(e) = __result {
                panic!("proptest case {}/{} failed: {}", __case + 1, __cfg.cases, e);
            }
        }
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Assert a condition inside a proptest body (returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a proptest body (returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __a,
                __b,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The shim machinery itself: ranges, vecs, tuples, indexes.
        #[test]
        fn shim_generates_in_bounds(
            n in 1usize..12,
            pairs in prop::collection::vec((any::<u8>(), any::<u64>()), 0..40),
            idx in any::<prop::sample::Index>(),
            k in 2i64..6,
        ) {
            prop_assert!((1..12).contains(&n));
            prop_assert!(pairs.len() < 40);
            prop_assert!(idx.index(n) < n);
            prop_assert_eq!(k.clamp(2, 5), k);
        }
    }
}
