//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace-local crate provides the (small) slice of the `rand 0.9`
//! API that the workload generators and tests actually use:
//!
//! * `rngs::StdRng` + `SeedableRng::seed_from_u64`
//! * `Rng::random_range` over half-open and inclusive integer ranges
//! * `Rng::random_bool`
//!
//! The generator is a SplitMix64-seeded xoshiro256** — deterministic per
//! seed, statistically solid for workload synthesis. Streams produced by
//! this shim differ from upstream `rand`, which is fine: the workspace only
//! relies on determinism-under-seed, never on specific draws.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core user-facing RNG trait (mirror of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open or inclusive integer ranges).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 high bits -> uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Ranges that can be sampled uniformly (mirror of `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one sample from the range using `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
            let w: usize = rng.random_range(2..=4);
            assert!((2..=4).contains(&w));
        }
    }

    #[test]
    fn bool_probabilities_degenerate() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((3500..6500).contains(&hits), "p=0.5 gave {hits}/10000");
    }
}
