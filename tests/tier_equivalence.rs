//! Tier/flat equivalence: a run with the cold tier enabled must be
//! *indistinguishable* from the same run without it — byte-identical output
//! sequences (not just multisets: demote and fault-back preserve insertion
//! seqs, so probe order is unchanged) and identical purge totals (finish
//! rehydrates every cold row before the final purge fixpoint, so no
//! provably-dead row escapes the count in either tier).
//!
//! Coverage: skewed/keyed/auction workloads × {Eager, Lazy} cadences ×
//! {sequential, P=4 sharded}, plus a proptest that sweeps the demotion
//! schedule itself — budget, low watermark, segment size, and workload seed
//! together determine *when* rows demote and fault back, so sampling them
//! exercises arbitrary demote/fault-back interleavings against the flat
//! run's outputs.
//!
//! `CJQ_CHAOS=<seed>` re-runs everything on fault-injected feeds (same
//! faulted feed on both sides), as in the other equivalence suites.

use proptest::prelude::*;

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::stream::exec::{
    BudgetPolicy, ExecConfig, Executor, PurgeCadence, RunResult, StateBudget,
};
use punctuated_cjq::stream::parallel::ShardedExecutor;
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::stream::tier::TierConfig;
use punctuated_cjq::workload::auction::{self, AuctionConfig};
use punctuated_cjq::workload::keyed::{self, KeyedConfig};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};
use punctuated_cjq::workload::skewed::{self, SkewedConfig};

/// `CJQ_CHAOS=<seed>` wraps every feed in the chaos-suite fault plan.
fn chaos_feed(feed: &Feed) -> Feed {
    use punctuated_cjq::stream::fault::{Fault, FaultPlan};
    match std::env::var("CJQ_CHAOS") {
        Ok(seed) => FaultPlan::new(seed.parse().unwrap_or(0xC4A0_5EED))
            .with(Fault::DuplicatePunctuations { prob: 0.15 })
            .with(Fault::DelayPunctuations { prob: 0.25, by: 3 })
            .with(Fault::TruncateTuples { prob: 0.05 })
            .apply(feed),
        Err(_) => feed.clone(),
    }
}

fn tiered_cfg(base: ExecConfig, budget: usize, tier: TierConfig) -> ExecConfig {
    ExecConfig {
        state_budget: Some(StateBudget {
            max_rows: budget,
            policy: BudgetPolicy::Shed,
        }),
        tiering: Some(tier),
        ..base
    }
}

/// Runs `feed` flat and tiered (sequentially), asserting byte-identical
/// outputs and identical purge totals. Returns both results.
fn run_pair(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    base: ExecConfig,
    budget: usize,
    tier: TierConfig,
    feed: &Feed,
) -> (RunResult, RunResult) {
    let base = ExecConfig {
        verify_certificates: true,
        ..base
    };
    let feed = &chaos_feed(feed);
    let flat = Executor::compile(query, schemes, plan, base)
        .expect("compile flat")
        .run(feed);
    let tiered = Executor::compile(query, schemes, plan, tiered_cfg(base, budget, tier))
        .expect("compile tiered")
        .try_run(feed)
        .expect("shed policy never hard-errors");
    assert_eq!(
        tiered.outputs, flat.outputs,
        "tiered outputs must be byte-identical to the flat run"
    );
    assert_eq!(tiered.metrics.outputs, flat.metrics.outputs);
    assert_eq!(
        tiered.metrics.purged, flat.metrics.purged,
        "purge totals must agree: every provably-dead row is purged in both tiers"
    );
    assert_eq!(tiered.metrics.violations, flat.metrics.violations);
    assert_eq!(
        tiered.metrics.last().map(|p| p.join_state),
        flat.metrics.last().map(|p| p.join_state),
        "final live state must agree after rehydration"
    );
    assert_eq!(tiered.metrics.rows_shed, 0, "tiering absorbs all overflow");
    (flat, tiered)
}

fn sorted(outputs: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut s = outputs.to_vec();
    s.sort_unstable();
    s
}

/// Sharded runs interleave shard outputs nondeterministically, so the
/// sharded flat/tiered comparison is by multiset plus totals.
#[allow(clippy::too_many_arguments)]
fn run_sharded_pair(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    base: ExecConfig,
    budget: usize,
    tier: TierConfig,
    feed: &Feed,
    shards: usize,
) {
    let feed = &chaos_feed(feed);
    let flat = ShardedExecutor::compile(query, schemes, plan, base, shards)
        .expect("compile flat sharded")
        .run(feed);
    let tiered =
        ShardedExecutor::compile(query, schemes, plan, tiered_cfg(base, budget, tier), shards)
            .expect("compile tiered sharded")
            .try_run(feed)
            .expect("shed policy never hard-errors");
    assert_eq!(
        sorted(&tiered.outputs),
        sorted(&flat.outputs),
        "P={shards}: tiered output multiset differs from flat"
    );
    assert_eq!(tiered.metrics.outputs, flat.metrics.outputs);
    assert_eq!(
        tiered.metrics.purged, flat.metrics.purged,
        "P={shards}: purge totals"
    );
    assert_eq!(tiered.metrics.rows_shed, 0);
}

const CADENCES: [PurgeCadence; 2] = [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 7 }];

#[test]
fn skewed_workload_equivalent_across_cadences_and_shards() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig5();
    let plan = Plan::mjoin_all(&query);
    let feed = skewed::generate(
        &query,
        &schemes,
        &SkewedConfig {
            events: 800,
            hot_keys: 8,
            cold_keys: 150,
            cold_window: 32,
            punct_lag: 80,
            ..SkewedConfig::default()
        },
    );
    for cadence in CADENCES {
        let base = ExecConfig {
            cadence,
            ..ExecConfig::default()
        };
        let (_, tiered) = run_pair(
            &query,
            &schemes,
            &plan,
            base,
            48,
            TierConfig::default(),
            &feed,
        );
        assert!(
            tiered.metrics.rows_demoted > 0,
            "{cadence:?}: the cap must actually force demotion"
        );
        run_sharded_pair(
            &query,
            &schemes,
            &plan,
            base,
            48,
            TierConfig::default(),
            &feed,
            4,
        );
    }
}

#[test]
fn keyed_fanout_equivalent_with_and_without_punctuations() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig8();
    let plan = Plan::mjoin_all(&query);
    for punctuate in [true, false] {
        // Without punctuations nothing ever purges: demote/fault-back is the
        // only state movement, and finish-time rehydration must restore the
        // exact flat live count.
        let feed = keyed::generate(
            &query,
            &schemes,
            &KeyedConfig {
                rounds: 60,
                lag: 20,
                tuples_per_round: 2,
                punctuate,
            },
        );
        for cadence in CADENCES {
            let base = ExecConfig {
                cadence,
                ..ExecConfig::default()
            };
            let (_, tiered) = run_pair(
                &query,
                &schemes,
                &plan,
                base,
                32,
                TierConfig::default(),
                &feed,
            );
            assert!(tiered.metrics.rows_demoted > 0);
        }
    }
}

#[test]
fn auction_workload_equivalent_under_tight_cap() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = auction::generate(&AuctionConfig {
        n_items: 120,
        bids_per_item: 4,
        concurrent: 24,
        ..AuctionConfig::default()
    });
    for cadence in CADENCES {
        let base = ExecConfig {
            cadence,
            ..ExecConfig::default()
        };
        run_pair(
            &query,
            &schemes,
            &plan,
            base,
            16,
            TierConfig::default(),
            &feed,
        );
        run_sharded_pair(
            &query,
            &schemes,
            &plan,
            base,
            16,
            TierConfig::default(),
            &feed,
            4,
        );
    }
}

/// The demotion schedule is a function of (budget, watermark, segment size,
/// workload seed, cadence): sampling all five sweeps arbitrary demote/
/// fault-back interleavings, and none of them may change a byte of output.
#[test]
fn random_demote_faultback_interleavings_never_change_results() {
    let topologies = [Topology::Path, Topology::Star, Topology::Cycle];
    proptest!(ProptestConfig::with_cases(12), |(
        seed in 0u64..500,
        topo_ix in 0usize..3,
        budget in 8usize..96,
        watermark in 30u8..100,
        segment_rows in 4usize..64,
        lazy in proptest::arbitrary::any::<bool>(),
        wl_seed in 0u64..100,
    )| {
        let qcfg = RandomQueryConfig {
            n_streams: 3,
            topology: topologies[topo_ix],
            seed,
            ..RandomQueryConfig::default()
        };
        let (query, schemes) = random_query::generate_safe(&qcfg);
        let plan = Plan::mjoin_all(&query);
        let feed = skewed::generate(&query, &schemes, &SkewedConfig {
            events: 300,
            hot_keys: 6,
            cold_keys: 60,
            cold_window: 16,
            punct_lag: 40,
            seed: wl_seed,
            ..SkewedConfig::default()
        });
        let base = ExecConfig {
            cadence: if lazy { PurgeCadence::Lazy { batch: 5 } } else { PurgeCadence::Eager },
            ..ExecConfig::default()
        };
        let tier = TierConfig {
            segment_rows,
            low_watermark_pct: watermark,
            ..TierConfig::default()
        };
        run_pair(&query, &schemes, &plan, base, budget, tier, &feed);
    });
}
