//! Cross-crate integration tests: the full pipeline from query registration
//! (safety check) through plan choice to execution, exercised the way a
//! DSMS would use the library (paper Figure 2's architecture).

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::core::safety;
use punctuated_cjq::planner::choose::{choose_plan, Objective};
use punctuated_cjq::planner::cost::Stats;
use punctuated_cjq::planner::enumerate::PlanSpace;
use punctuated_cjq::planner::scheme_select;
use punctuated_cjq::stream::exec::{ExecConfig, Executor};
use punctuated_cjq::stream::groupby::Aggregate;
use punctuated_cjq::workload::auction::{self, AuctionConfig, BID};
use punctuated_cjq::workload::keyed::{self, KeyedConfig};
use punctuated_cjq::workload::network::{self, NetworkConfig};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};

/// The register's workflow: check safety, enumerate, cost, pick, run.
#[test]
fn register_check_choose_execute() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig5();

    // 1. Safety check (Theorem 2).
    let report = safety::check_query(&query, &schemes);
    assert!(report.safe);

    // 2. Safe-plan choice (§5.2).
    let chosen = choose_plan(
        &query,
        &schemes,
        Stats::uniform(3, 1.0, 10.0, 0.1, 0.3),
        Objective::MinDataMemory,
        100,
    )
    .expect("safe query has a plan");
    assert!(check_plan(&query, &schemes, &chosen.plan).unwrap().safe);

    // 3. Execute the chosen plan on a punctuated feed.
    let feed = keyed::generate(
        &query,
        &schemes,
        &KeyedConfig {
            rounds: 200,
            lag: 3,
            ..Default::default()
        },
    );
    let exec = Executor::compile(&query, &schemes, &chosen.plan, ExecConfig::default()).unwrap();
    let result = exec.run(&feed);
    assert_eq!(result.metrics.outputs, 200);
    assert_eq!(result.metrics.violations, 0);
    assert!(result.metrics.peak_join_state <= 15, "bounded as promised");
}

/// An unsafe query must be rejected before execution (the register's whole
/// point: fail at compile time, not by exhausting memory).
#[test]
fn register_rejects_unsafe_queries() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig3();
    assert!(!safety::is_query_safe(&query, &schemes));
    assert!(choose_plan(
        &query,
        &schemes,
        Stats::uniform(3, 1.0, 10.0, 0.1, 0.3),
        Objective::MinDataMemory,
        100
    )
    .is_none());
    let mut space = PlanSpace::new(&query, &schemes);
    assert_eq!(space.count_safe_plans(), 0);
    // The report names a witness the register can show the user.
    let report = safety::check_query(&query, &schemes);
    let (from, _to) = report.witness().unwrap();
    assert!(report
        .per_stream
        .iter()
        .any(|p| p.stream == from && !p.purgeable));
}

/// The full auction pipeline of Example 1: join + group-by + punctuations,
/// with aggregates emitted exactly when auctions close.
#[test]
fn auction_example_full_pipeline() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let exec = Executor::compile(&query, &schemes, &plan, ExecConfig::default())
        .unwrap()
        .with_groupby(
            &[AttrRef {
                stream: BID,
                attr: AttrId(1),
            }],
            Aggregate::Sum(AttrRef {
                stream: BID,
                attr: AttrId(2),
            }),
        );
    let cfg = AuctionConfig {
        n_items: 120,
        bids_per_item: 6,
        ..AuctionConfig::default()
    };
    let feed = auction::generate(&cfg);
    let result = exec.run(&feed);
    assert_eq!(result.metrics.outputs, 720);
    assert_eq!(
        result.aggregates.len(),
        120,
        "every auction closed by punctuation"
    );
    // Aggregate = sum of 6 increases in 1..100 each: plausible range check.
    for row in &result.aggregates {
        let Value::Int(total) = row[1] else {
            panic!("sum is an int")
        };
        assert!((6..600).contains(&total));
    }
    assert_eq!(result.metrics.last().unwrap().join_state, 0);
    assert_eq!(result.metrics.last().unwrap().groups, 0);
}

/// Scheme-set minimization composes with execution: the minimal subset keeps
/// the query safe and the run bounded (at possibly later purge times).
#[test]
fn minimal_schemes_still_bound_execution() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig8();
    let minimal = scheme_select::minimum_safe_subset(&query, &schemes).unwrap();
    assert!(minimal.len() <= schemes.len());
    assert!(safety::is_query_safe(&query, &minimal));

    let feed = keyed::generate(
        &query,
        &minimal,
        &KeyedConfig {
            rounds: 120,
            lag: 2,
            ..Default::default()
        },
    );
    let exec = Executor::compile(
        &query,
        &minimal,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
    )
    .unwrap();
    let result = exec.run(&feed);
    assert_eq!(result.metrics.outputs, 120);
    assert_eq!(result.metrics.last().unwrap().join_state, 0);
}

/// The network scenario end-to-end (multi-attribute schemes + lifespans).
#[test]
fn network_scenario_with_lifespans() {
    let (query, schemes) = network::network_query();
    assert!(safety::is_query_safe(&query, &schemes));
    let feed = network::generate(&NetworkConfig {
        n_flows: 40,
        pkts_per_flow: 6,
        n_sources: 3,
        seq_space: 24,
        ack_prob: 1.0,
        ..NetworkConfig::default()
    });
    let cfg = ExecConfig {
        punct_lifespan: Some(100),
        ..ExecConfig::default()
    };
    let exec = Executor::compile(&query, &schemes, &Plan::mjoin_all(&query), cfg).unwrap();
    let result = exec.run(&feed);
    assert_eq!(result.metrics.violations, 0);
    assert_eq!(result.metrics.outputs, 240);
    assert!(result.metrics.peak_punct_entries < 200);
}

/// Random safe queries execute bounded under round-keyed feeds, across
/// topologies — a randomized end-to-end sweep.
#[test]
fn random_safe_queries_run_bounded() {
    for (i, topology) in [Topology::Path, Topology::Star, Topology::Cycle]
        .into_iter()
        .enumerate()
    {
        let cfg = RandomQueryConfig {
            n_streams: 4,
            topology,
            seed: 100 + i as u64,
            ..RandomQueryConfig::default()
        };
        let (query, schemes) = random_query::generate_safe(&cfg);
        assert!(safety::is_query_safe(&query, &schemes));
        let feed = keyed::generate(
            &query,
            &schemes,
            &KeyedConfig {
                rounds: 80,
                lag: 2,
                ..Default::default()
            },
        );
        let exec = Executor::compile(
            &query,
            &schemes,
            &Plan::mjoin_all(&query),
            ExecConfig::default(),
        )
        .unwrap();
        let result = exec.run(&feed);
        assert_eq!(result.metrics.violations, 0, "{topology:?}");
        assert_eq!(result.metrics.outputs, 80, "{topology:?}");
        assert!(result.metrics.peak_join_state <= 4 * 4, "{topology:?}");
    }
}

/// Scale test: a 6-way cycle query on a bushy mixed plan (an MJoin over two
/// binary joins and two leaves), 500 rounds, weighted arrival rates.
#[test]
fn six_way_mixed_plan_scales_bounded() {
    let cfg = RandomQueryConfig {
        n_streams: 6,
        topology: Topology::Cycle,
        seed: 6,
        ..RandomQueryConfig::default()
    };
    let (query, schemes) = random_query::generate_safe(&cfg);
    assert!(safety::is_query_safe(&query, &schemes));

    // Bushy mixed plan: ((S1 ⋈ S2) ⋈ (S3 ⋈ S4) ⋈ S5 ⋈ S6).
    let plan = Plan::join(vec![
        Plan::join(vec![Plan::leaf(0), Plan::leaf(1)]),
        Plan::join(vec![Plan::leaf(2), Plan::leaf(3)]),
        Plan::leaf(4),
        Plan::leaf(5),
    ]);
    plan.validate(&query).unwrap();
    let verdict = check_plan(&query, &schemes, &plan).unwrap();
    assert!(
        verdict.safe,
        "full scheme coverage makes every operator purgeable"
    );

    let feed = keyed::generate(
        &query,
        &schemes,
        &KeyedConfig {
            rounds: 500,
            lag: 3,
            ..Default::default()
        },
    );
    let cfg_exec = ExecConfig {
        record_outputs: false,
        ..ExecConfig::default()
    };
    let exec = Executor::compile(&query, &schemes, &plan, cfg_exec).unwrap();
    let res = exec.run(&feed);
    assert_eq!(res.metrics.violations, 0);
    assert_eq!(res.metrics.outputs, 500);
    assert_eq!(res.metrics.last().unwrap().join_state, 0);
    assert!(
        res.metrics.peak_join_state <= 64,
        "peak {} must not scale with the 500 rounds",
        res.metrics.peak_join_state
    );
}

/// Rate-skewed arrivals via the weighted interleaver: a hot stream floods
/// the join but punctuations still bound the state.
#[test]
fn weighted_arrivals_stay_bounded() {
    use punctuated_cjq::stream::source::Feed;
    use punctuated_cjq::stream::tuple::Tuple;
    let (query, schemes) = punctuated_cjq::core::fixtures::auction();
    // Scripts: one item per key; five bids per key; punctuations trail.
    let items: Vec<_> = (0..100i64)
        .flat_map(|i| {
            vec![
                punctuated_cjq::stream::element::StreamElement::from(Tuple::of(
                    0,
                    vec![
                        Value::Int(1),
                        Value::Int(i),
                        Value::from("x"),
                        Value::Int(1),
                    ],
                )),
                punctuated_cjq::workload::auction::item_close(i),
            ]
        })
        .collect();
    let bids: Vec<_> = (0..100i64)
        .flat_map(|i| {
            let mut v: Vec<punctuated_cjq::stream::element::StreamElement> = (0..5)
                .map(|b| Tuple::of(1, vec![Value::Int(b), Value::Int(i), Value::Int(1)]).into())
                .collect();
            v.push(punctuated_cjq::workload::auction::bid_close(i));
            v
        })
        .collect();
    let feed = Feed::weighted(vec![items, bids], &[1, 3]);
    let exec = Executor::compile(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
    )
    .unwrap();
    let res = exec.run(&feed);
    assert_eq!(res.metrics.violations, 0);
    assert_eq!(res.metrics.outputs, 500);
    assert!(
        res.metrics.peak_join_state < 250,
        "peak {}",
        res.metrics.peak_join_state
    );
}

/// Theorem 2's constructive direction at runtime: whenever the query is
/// safe, the flat MJoin plan executes bounded; and plan safety checked at
/// compile time predicts runtime boundedness for binary trees too.
#[test]
fn plan_safety_predicts_runtime_boundedness() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig5();
    let feed = keyed::generate(
        &query,
        &schemes,
        &KeyedConfig {
            rounds: 150,
            lag: 2,
            ..Default::default()
        },
    );
    let space = PlanSpace::new(&query, &schemes);
    let mut checked = 0;
    for plan in [
        Plan::mjoin_all(&query),
        Plan::left_deep(&[StreamId(0), StreamId(1), StreamId(2)]),
        Plan::left_deep(&[StreamId(1), StreamId(2), StreamId(0)]),
    ] {
        let safe = check_plan(&query, &schemes, &plan).unwrap().safe;
        let exec = Executor::compile(&query, &schemes, &plan, ExecConfig::default()).unwrap();
        let m = exec.run(&feed).metrics;
        if safe {
            assert!(m.peak_join_state <= 15, "{plan}: safe => bounded");
        } else {
            assert!(
                m.last().unwrap().join_state >= 150,
                "{plan}: unsafe => grows with the feed"
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 3);
    let _ = space;
}
