//! Shard/sequential equivalence: the hash-partitioned [`ShardedExecutor`]
//! must produce the same result multiset as the sequential [`Executor`], and
//! its merged *logical* live state must agree with the sequential run's.
//!
//! Two regimes are checked:
//!
//! * **Punctuation-closed feeds** (every key eventually punctuated on every
//!   scheme): both engines must end with zero live state.
//! * **Punctuation-free feeds**: nothing is ever purged anywhere, so the
//!   logical merge (partitioned state summed, broadcast state unioned by
//!   slot id) must equal the sequential live count *exactly* — any
//!   double-count or drop in the routing/merge logic shows up here.

use proptest::prelude::*;

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::stream::exec::{ExecConfig, Executor, PurgeCadence, RunResult};
use punctuated_cjq::stream::parallel::{ShardedExecutor, ShardedRunResult};
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::workload::auction::{self, AuctionConfig};
use punctuated_cjq::workload::keyed::{self, KeyedConfig};
use punctuated_cjq::workload::network::{self, NetworkConfig};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};
use punctuated_cjq::workload::sensor::{self, SensorConfig};
use punctuated_cjq::workload::trades::{self, TradesConfig};

fn sorted_outputs(outputs: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut sorted = outputs.to_vec();
    sorted.sort_unstable();
    sorted
}

/// `CJQ_CHAOS=<seed>` re-runs the whole suite on fault-injected feeds:
/// duplicated/delayed punctuations plus truncated tuples, admitted under
/// the default `Quarantine` policy. Every side of every equivalence sees
/// the same faulted feed, so the assertions are unchanged — CI uses this
/// to prove output equivalence end to end under faults.
fn chaos_feed(feed: &Feed) -> Feed {
    use punctuated_cjq::stream::fault::{Fault, FaultPlan};
    match std::env::var("CJQ_CHAOS") {
        Ok(seed) => FaultPlan::new(seed.parse().unwrap_or(0xC4A0_5EED))
            .with(Fault::DuplicatePunctuations { prob: 0.15 })
            .with(Fault::DelayPunctuations { prob: 0.25, by: 3 })
            .with(Fault::TruncateTuples { prob: 0.05 })
            .apply(feed),
        Err(_) => feed.clone(),
    }
}

/// Runs `feed` sequentially and sharded at each `shard_count`, asserting the
/// output multisets match. Returns the (sequential, per-P sharded) results.
///
/// Both executors run with the static **bound certificate** armed: contracts
/// are inferred from the feed itself (the tightest cadences it conforms to),
/// evaluated into per-port row bounds, and enforced per element — an
/// observed peak above a static bound is a hard [`ExecError`], so every
/// equivalence case doubles as a bounds-agreement check.
fn run_both(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    cfg: ExecConfig,
    feed: &Feed,
    shard_counts: &[usize],
) -> (RunResult, Vec<ShardedRunResult>) {
    use punctuated_cjq::stream::certify;
    // Exercise the runtime certificate verifier alongside the equivalence
    // checks (recipes vs. static certificates, fast verdicts vs. oracle).
    let cfg = ExecConfig {
        verify_certificates: true,
        ..cfg
    };
    let feed = &chaos_feed(feed);
    let contracts = certify::infer_contracts(query, schemes, feed);
    let port_bounds =
        certify::port_bound_certificate(query, schemes, &contracts, plan, cfg.scope, cfg.cadence);
    let seq = {
        let mut exec = Executor::compile(query, schemes, plan, cfg).expect("compile");
        exec.set_port_bounds(port_bounds.clone());
        exec.run(feed)
    };
    let expected = sorted_outputs(&seq.outputs);
    let sharded: Vec<ShardedRunResult> = shard_counts
        .iter()
        .map(|&p| {
            let mut sharded_exec =
                ShardedExecutor::compile(query, schemes, plan, cfg, p).expect("compile sharded");
            sharded_exec.set_port_bounds(port_bounds.clone());
            let res = sharded_exec.run(feed);
            assert_eq!(
                sorted_outputs(&res.outputs),
                expected,
                "P={p}: output multiset differs from sequential"
            );
            assert_eq!(
                res.metrics.outputs, seq.metrics.outputs,
                "P={p}: output count"
            );
            assert_eq!(
                res.metrics.tuples_in, seq.metrics.tuples_in,
                "P={p}: tuples_in"
            );
            assert_eq!(
                res.metrics.puncts_in, seq.metrics.puncts_in,
                "P={p}: puncts_in"
            );
            assert_eq!(
                res.metrics.violations, seq.metrics.violations,
                "P={p}: violations"
            );
            res
        })
        .collect();
    // Bounds agreement: every observed per-port peak stays at or under its
    // certified static bound (the executor enforced this element by element;
    // re-assert against the recorded peaks for good measure).
    let check_peaks = |m: &punctuated_cjq::stream::metrics::Metrics, who: &str| {
        for (i, bound) in port_bounds.iter().enumerate() {
            if let Some(bound) = bound {
                let peak = m.peak_port_rows.get(i).copied().unwrap_or(0);
                assert!(
                    peak as u64 <= *bound,
                    "{who}: port {i} observed peak {peak} exceeds static bound {bound}"
                );
            }
        }
    };
    check_peaks(&seq.metrics, "sequential");
    for (res, p) in sharded.iter().zip(shard_counts) {
        check_peaks(&res.metrics, &format!("P={p}"));
    }
    (seq, sharded)
}

#[test]
fn random_safe_queries_match_sequential() {
    let topologies = [
        Topology::Path,
        Topology::Star,
        Topology::Cycle,
        Topology::Random { extra_edges: 2 },
    ];
    proptest!(ProptestConfig::with_cases(16), |(
        seed in 0u64..1000,
        n in 2usize..6,
        topo_ix in 0usize..4,
        lazy in proptest::arbitrary::any::<bool>(),
    )| {
        let qcfg = RandomQueryConfig {
            n_streams: n,
            topology: topologies[topo_ix],
            seed,
            ..RandomQueryConfig::default()
        };
        let (query, schemes) = random_query::generate_safe(&qcfg);
        let plan = Plan::mjoin_all(&query);
        let cadence = if lazy { PurgeCadence::Lazy { batch: 7 } } else { PurgeCadence::Eager };
        let cfg = ExecConfig { cadence, ..ExecConfig::default() };

        // Closed feed: every key punctuated on every scheme => all state dies.
        let closed =
            keyed::generate(&query, &schemes, &KeyedConfig { rounds: 25, lag: 2, ..KeyedConfig::default() });
        let (seq, sharded) = run_both(&query, &schemes, &plan, cfg, &closed, &[1, 2, 4]);
        prop_assert_eq!(seq.metrics.last().unwrap().join_state, 0);
        for (res, p) in sharded.iter().zip([1usize, 2, 4]) {
            prop_assert_eq!(res.logical_join_state, 0, "P={}: closed feed must purge fully", p);
        }

        // Punctuation-free feed: no purging anywhere, so the logical merge
        // must reproduce the sequential live counts exactly.
        let open = keyed::generate(
            &query,
            &schemes,
            &KeyedConfig { rounds: 12, punctuate: false, ..KeyedConfig::default() },
        );
        let (seq, sharded) = run_both(&query, &schemes, &plan, cfg, &open, &[2, 4]);
        let seq_live = seq.metrics.last().unwrap().join_state;
        let seq_mirror = seq.metrics.last().unwrap().mirror;
        for (res, p) in sharded.iter().zip([2usize, 4]) {
            prop_assert_eq!(res.logical_join_state, seq_live, "P={}: live join state", p);
            prop_assert_eq!(res.logical_mirror, seq_mirror, "P={}: live mirror", p);
        }
    });
}

#[test]
fn auction_workload_matches_sequential_and_purges() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = auction::generate(&AuctionConfig {
        n_items: 80,
        bids_per_item: 3,
        concurrent: 8,
        ..AuctionConfig::default()
    });
    for cadence in [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 16 }] {
        let cfg = ExecConfig {
            cadence,
            ..ExecConfig::default()
        };
        let (seq, sharded) = run_both(&query, &schemes, &plan, cfg, &feed, &[1, 2, 4]);
        // The auction feed closes every item: both engines end empty.
        assert_eq!(seq.metrics.last().unwrap().join_state, 0);
        for res in &sharded {
            assert_eq!(
                res.logical_join_state,
                seq.metrics.last().unwrap().join_state
            );
            // Bounded state per shard: no shard's peak exceeds the whole
            // sequential peak (safety is preserved shard-locally).
            for shard in &res.shards {
                assert!(shard.metrics.peak_join_state <= seq.metrics.peak_join_state);
            }
        }
    }
}

#[test]
fn sensor_workload_matches_sequential() {
    let (query, schemes) = sensor::sensor_query();
    let plan = Plan::mjoin_all(&query);
    let (feed, _) = sensor::generate(&SensorConfig {
        n_sensors: 8,
        epochs: 12,
        ..SensorConfig::default()
    });
    let (seq, sharded) = run_both(
        &query,
        &schemes,
        &plan,
        ExecConfig::default(),
        &feed,
        &[1, 2, 4],
    );
    for res in &sharded {
        assert_eq!(
            res.logical_join_state,
            seq.metrics.last().unwrap().join_state
        );
    }
}

#[test]
fn network_and_trades_workloads_match_sequential() {
    let (query, schemes) = network::network_query();
    let feed = network::generate(&NetworkConfig::default());
    run_both(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
        &feed,
        &[2, 4],
    );

    let (query, schemes) = trades::trades_query();
    let (feed, _) = trades::generate(&TradesConfig::default());
    run_both(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
        &feed,
        &[2, 4],
    );
}

/// Flat state growth under sharding: doubling the feed must not double the
/// peak state of any shard (bounded-state safety, Theorem 1 per shard).
#[test]
fn sharded_state_stays_flat_under_both_cadences() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let peak_at = |n_items: usize, cadence: PurgeCadence| -> usize {
        let feed = auction::generate(&AuctionConfig {
            n_items,
            bids_per_item: 3,
            concurrent: 6,
            ..AuctionConfig::default()
        });
        let cfg = ExecConfig {
            cadence,
            record_outputs: false,
            ..ExecConfig::default()
        };
        let res = ShardedExecutor::compile(&query, &schemes, &plan, cfg, 4)
            .unwrap()
            .run(&feed);
        res.shards
            .iter()
            .map(|s| s.metrics.peak_join_state)
            .max()
            .unwrap()
    };
    // Flat growth: the peak is bounded by the workload's concurrency (plus
    // the lazy batch slack), never by the feed length — a 8x longer feed must
    // stay under the same constant.
    for cadence in [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 32 }] {
        let bound = 2 * 6 + 32; // 2 tuples per open auction + lazy slack
        for n_items in [60, 120, 240, 480] {
            let peak = peak_at(n_items, cadence);
            assert!(
                peak <= bound,
                "{cadence:?}: n_items={n_items} peak {peak} exceeds flat bound {bound}"
            );
        }
    }
}
