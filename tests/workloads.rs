//! Integration tests running every workload family through the full
//! register → plan → execute pipeline.

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::register::Register;
use punctuated_cjq::stream::exec::ExecConfig;
use punctuated_cjq::workload::sensor::{self, SensorConfig};
use punctuated_cjq::workload::trades::{self, TradesConfig};

#[test]
fn sensor_workload_through_the_register() {
    let (query, schemes) = sensor::sensor_query();
    let registered = Register::new(schemes)
        .register(query)
        .expect("sensor query is safe");
    // Multi-attribute schemes: the admitting check must be the generalized one.
    assert_eq!(
        registered.report.method,
        punctuated_cjq::core::safety::CheckMethod::Generalized
    );
    let cfg = SensorConfig {
        n_sensors: 3,
        epochs: 30,
        ..SensorConfig::default()
    };
    let (feed, alert_epochs) = sensor::generate(&cfg);
    let res = registered
        .executor(ExecConfig::default())
        .unwrap()
        .run(&feed);
    assert_eq!(res.metrics.violations, 0);
    assert_eq!(
        res.metrics.outputs,
        (alert_epochs * cfg.readings_per_epoch) as u64
    );
    assert_eq!(res.metrics.last().unwrap().join_state, 0);
}

#[test]
fn trades_workload_through_the_register() {
    let (query, schemes) = trades::trades_query();
    let registered = Register::new(schemes)
        .register(query)
        .expect("trades query is safe");
    let cfg = TradesConfig {
        ticks: 200,
        ..TradesConfig::default()
    };
    let (feed, expected) = trades::generate(&cfg);
    let res = registered
        .executor(ExecConfig::default())
        .unwrap()
        .run(&feed);
    assert_eq!(res.metrics.violations, 0);
    assert_eq!(res.metrics.outputs, expected);
    // Watermark pay-off: O(1) punctuation store per stream.
    assert!(res.metrics.peak_punct_entries <= 2);
}

#[test]
fn run_result_operator_snapshots_cover_the_plan() {
    let (query, schemes) = sensor::sensor_query();
    let registered = Register::new(schemes).register(query).unwrap();
    let (feed, _) = sensor::generate(&SensorConfig::default());
    let res = registered
        .executor(ExecConfig::default())
        .unwrap()
        .run(&feed);
    assert!(!res.operators.is_empty());
    // The root operator spans all streams and emitted every result.
    let root = res.operators.last().unwrap();
    assert_eq!(root.span.len(), 3);
    assert_eq!(root.stats.outputs, res.metrics.outputs);
    let _ = StreamId(0);
}
