//! WCOJ/binary equivalence: the worst-case-optimal probe path must be
//! *observationally invisible* — byte-identical output sequences (not just
//! multisets: the prefix-extension path sorts its result combinations by the
//! same per-port insertion-sequence key the MJoin DFS emits in) and identical
//! purge totals (the WCOJ operator reuses the flat MJoin's per-port chained
//! purge recipes verbatim, so its purge fixpoint is the same fixpoint), with
//! runtime certificate verification on throughout.
//!
//! Coverage: triangle/4-cycle graph workloads × {skewed, uniform} ×
//! {Eager, Lazy} cadences × {sequential, P=4 sharded}, a tree-plan
//! cross-check (same result multiset, and the intermediate-rows metric shows
//! the binary tree materializing rows the flat paths never build), an
//! unconditional seeded fault run, and a proptest pitting the planner's
//! cycle detector against a brute-force DFS oracle on random join graphs.
//!
//! `CJQ_CHAOS=<seed>` re-runs the suite on fault-injected feeds (same
//! faulted feed on both sides), as in the other equivalence suites.

use proptest::prelude::*;

use punctuated_cjq::core::join_graph::JoinGraph;
use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::core::query::JoinPredicate;
use punctuated_cjq::core::schema::{Catalog, StreamSchema};
use punctuated_cjq::stream::exec::{ExecConfig, Executor, PurgeCadence, RunResult};
use punctuated_cjq::stream::fault::{Fault, FaultPlan};
use punctuated_cjq::stream::parallel::ShardedExecutor;
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::workload::graph::{self, GraphConfig};

/// `CJQ_CHAOS=<seed>` wraps every feed in the chaos-suite fault plan.
fn chaos_feed(feed: &Feed) -> Feed {
    match std::env::var("CJQ_CHAOS") {
        Ok(seed) => FaultPlan::new(seed.parse().unwrap_or(0xC4A0_5EED))
            .with(Fault::DuplicatePunctuations { prob: 0.15 })
            .with(Fault::DelayPunctuations { prob: 0.25, by: 3 })
            .with(Fault::TruncateTuples { prob: 0.05 })
            .apply(feed),
        Err(_) => feed.clone(),
    }
}

fn wcoj_cfg(base: ExecConfig) -> ExecConfig {
    ExecConfig { wcoj: true, ..base }
}

/// Runs `feed` through the flat MJoin twice — binary port-by-port probing vs
/// worst-case-optimal prefix extension — asserting byte-identical outputs
/// and identical purge totals. Returns both results.
fn run_pair(
    query: &Cjq,
    schemes: &SchemeSet,
    base: ExecConfig,
    feed: &Feed,
) -> (RunResult, RunResult) {
    let base = ExecConfig {
        verify_certificates: true,
        ..base
    };
    let plan = Plan::mjoin_all(query);
    let feed = &chaos_feed(feed);
    let binary = Executor::compile(query, schemes, &plan, base)
        .expect("compile binary")
        .run(feed);
    let wcoj = Executor::compile(query, schemes, &plan, wcoj_cfg(base))
        .expect("compile wcoj")
        .run(feed);
    assert_eq!(
        wcoj.outputs, binary.outputs,
        "wcoj outputs must be byte-identical to the binary probe path"
    );
    assert_eq!(wcoj.metrics.outputs, binary.metrics.outputs);
    assert_eq!(
        wcoj.metrics.purged, binary.metrics.purged,
        "purge totals must agree: both paths run the same chained recipes"
    );
    assert_eq!(wcoj.metrics.violations, binary.metrics.violations);
    assert_eq!(
        wcoj.metrics.last().map(|p| p.join_state),
        binary.metrics.last().map(|p| p.join_state),
        "final live state must agree"
    );
    assert_eq!(
        wcoj.metrics.intermediate_rows, 0,
        "flat paths materialize no intermediates"
    );
    (binary, wcoj)
}

fn sorted(outputs: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut s = outputs.to_vec();
    s.sort_unstable();
    s
}

/// Sharded runs interleave shard outputs nondeterministically, so the
/// sharded binary/wcoj comparison is by multiset plus totals.
fn run_sharded_pair(
    query: &Cjq,
    schemes: &SchemeSet,
    base: ExecConfig,
    feed: &Feed,
    shards: usize,
) {
    let plan = Plan::mjoin_all(query);
    let feed = &chaos_feed(feed);
    let binary = ShardedExecutor::compile(query, schemes, &plan, base, shards)
        .expect("compile binary sharded")
        .run(feed);
    let wcoj = ShardedExecutor::compile(query, schemes, &plan, wcoj_cfg(base), shards)
        .expect("compile wcoj sharded")
        .run(feed);
    assert_eq!(
        sorted(&wcoj.outputs),
        sorted(&binary.outputs),
        "P={shards}: wcoj output multiset differs from binary"
    );
    assert_eq!(wcoj.metrics.outputs, binary.metrics.outputs);
    assert_eq!(
        wcoj.metrics.purged, binary.metrics.purged,
        "P={shards}: purge totals"
    );
}

const CADENCES: [PurgeCadence; 2] = [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 7 }];

fn small() -> GraphConfig {
    GraphConfig {
        edges: 1500,
        vertices: 150,
        window: 24,
        punct_lag: 100,
        ..GraphConfig::default()
    }
}

#[test]
fn graph_workloads_equivalent_across_cadences_and_shards() {
    for (query, schemes) in [graph::triangle_query(), graph::four_cycle_query()] {
        for cfg in [small(), small().uniform()] {
            let feed = graph::generate(&query, &schemes, &cfg);
            for cadence in CADENCES {
                let base = ExecConfig {
                    cadence,
                    ..ExecConfig::default()
                };
                let (binary, _) = run_pair(&query, &schemes, base, &feed);
                assert!(binary.metrics.outputs > 0, "cycles must actually close");
                run_sharded_pair(&query, &schemes, base, &feed, 4);
            }
        }
    }
}

/// Cross-check against a genuine binary *tree* plan: same result multiset,
/// and the tree materializes intermediate composite rows where the flat
/// worst-case-optimal run materializes none — the gap the `wcoj` bench
/// measures as throughput.
#[test]
fn tree_plan_agrees_on_results_but_materializes_intermediates() {
    let (query, schemes) = graph::triangle_query();
    let feed = chaos_feed(&graph::generate(&query, &schemes, &small()));
    let base = ExecConfig {
        verify_certificates: true,
        // Query-level purging: plan-independent, so the tree plan's composite
        // state is purgeable too.
        scope: punctuated_cjq::stream::purge::PurgeScope::Query,
        ..ExecConfig::default()
    };
    let order: Vec<_> = query.stream_ids().collect();
    let tree = Executor::compile(&query, &schemes, &Plan::left_deep(&order), base)
        .expect("compile tree")
        .run(&feed);
    let wcoj = Executor::compile(&query, &schemes, &Plan::mjoin_all(&query), wcoj_cfg(base))
        .expect("compile wcoj")
        .run(&feed);
    assert_eq!(
        sorted(&wcoj.outputs),
        sorted(&tree.outputs),
        "plans must agree on the result multiset"
    );
    assert!(
        tree.metrics.intermediate_rows > 0,
        "the tree plan materializes 2-paths"
    );
    assert_eq!(wcoj.metrics.intermediate_rows, 0);
}

/// Unconditional seeded fault run: truncated tuples and dropped punctuations
/// hit both probe paths identically — outputs stay byte-identical and the
/// quarantine/violation accounting agrees.
#[test]
fn seeded_fault_run_stays_byte_identical() {
    let (query, schemes) = graph::triangle_query();
    let feed = FaultPlan::new(0xC4A0_5EED)
        .with(Fault::TruncateTuples { prob: 0.1 })
        .with(Fault::DropPunctuations { prob: 0.1 })
        .apply(&graph::generate(&query, &schemes, &small()));
    let base = ExecConfig {
        verify_certificates: true,
        ..ExecConfig::default()
    };
    let plan = Plan::mjoin_all(&query);
    let binary = Executor::compile(&query, &schemes, &plan, base)
        .expect("compile binary")
        .run(&feed);
    let wcoj = Executor::compile(&query, &schemes, &plan, wcoj_cfg(base))
        .expect("compile wcoj")
        .run(&feed);
    assert_eq!(wcoj.outputs, binary.outputs);
    assert_eq!(wcoj.metrics.quarantined, binary.metrics.quarantined);
    assert_eq!(wcoj.metrics.purged, binary.metrics.purged);
}

/// Brute-force undirected cycle oracle: DFS with parent-edge skipping over
/// the deduplicated stream-pair edge set.
fn has_cycle_oracle(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut color = vec![0u8; n];
    for root in 0..n {
        if color[root] != 0 {
            continue;
        }
        let mut stack = vec![(root, usize::MAX)];
        while let Some((u, parent)) = stack.pop() {
            if color[u] != 0 {
                // Reached along two different tree paths: a cycle.
                return true;
            }
            color[u] = 1;
            for &v in &adj[u] {
                if v == parent {
                    continue;
                }
                if color[v] != 0 {
                    return true;
                }
                stack.push((v, u));
            }
        }
    }
    false
}

/// Random connected join graphs: a random spanning tree plus random extra
/// stream pairs. The detector must agree with the brute-force oracle, and
/// every witness it produces must be a genuine simple cycle.
#[test]
fn cycle_detection_agrees_with_the_dfs_oracle() {
    proptest!(ProptestConfig::with_cases(64), |(
        n in 3usize..8,
        parents in proptest::collection::vec(0usize..7, 7),
        extras in proptest::collection::vec((0usize..8, 0usize..8), 0..4),
        attrs in proptest::collection::vec(0usize..3, 16),
    )| {
        let mut cat = Catalog::new();
        for i in 0..n {
            cat.add_stream(StreamSchema::new(format!("S{i}"), ["A", "B", "C"]).unwrap());
        }
        // Spanning tree: stream i > 0 attaches to a random earlier stream.
        let mut pairs: Vec<(usize, usize)> = (1..n).map(|i| (parents[i - 1] % i, i)).collect();
        for &(a, b) in &extras {
            let (a, b) = (a % n, b % n);
            if a != b {
                pairs.push((a.min(b), a.max(b)));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let preds: Vec<JoinPredicate> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                JoinPredicate::between(a, attrs[i % attrs.len()], b, attrs[(i + 1) % attrs.len()])
                    .unwrap()
            })
            .collect();
        let query = Cjq::new(cat, preds).unwrap();
        let graph = JoinGraph::of_query(&query);
        let witness = graph.cycle_witness();
        prop_assert_eq!(
            witness.is_some(),
            has_cycle_oracle(n, &pairs),
            "detector and oracle disagree on {:?}",
            pairs
        );
        if let Some(cycle) = witness {
            prop_assert!(cycle.len() >= 3);
            let mut distinct = cycle.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), cycle.len(), "witness must be simple");
            for i in 0..cycle.len() {
                prop_assert!(graph.adjacent(cycle[i], cycle[(i + 1) % cycle.len()]));
            }
        }
    });
}
