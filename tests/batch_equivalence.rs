//! Batched/legacy equivalence: the vectorized micro-batch data path
//! ([`Executor::run_batched`] / [`Executor::run_with_sink`], and the sharded
//! executor's batched workers) must be observationally identical to the
//! legacy per-element path ([`Executor::push`]):
//!
//! * the same output multiset (and, per sink contract, the same rows reach
//!   every [`ResultSink`]);
//! * the same logical counters (tuples in, punctuations, violations,
//!   outputs, aggregates);
//! * the same purge behavior — cycle count, purge totals, and the *entire
//!   state-size sample series*, point for point. Runs are capped at purge /
//!   sample / window boundaries, so batch size must be unobservable.

use proptest::prelude::*;

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::core::schema::AttrId;
use punctuated_cjq::stream::exec::{ExecConfig, Executor, PurgeCadence, RunResult};
use punctuated_cjq::stream::groupby::Aggregate;
use punctuated_cjq::stream::parallel::ShardedExecutor;
use punctuated_cjq::stream::sink::{CallbackSink, CollectSink, CountSink};
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::stream::tuple::Tuple;
use punctuated_cjq::workload::auction::{self, AuctionConfig};
use punctuated_cjq::workload::keyed::{self, KeyedConfig};
use punctuated_cjq::workload::network::{self, NetworkConfig};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};
use punctuated_cjq::workload::sensor::{self, SensorConfig};
use punctuated_cjq::workload::trades::{self, TradesConfig};

fn sorted_outputs(outputs: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut sorted = outputs.to_vec();
    sorted.sort_unstable();
    sorted
}

/// `CJQ_CHAOS=<seed>` re-runs the whole suite on fault-injected feeds:
/// duplicated/delayed punctuations plus truncated tuples, admitted under
/// the default `Quarantine` policy. Every side of every equivalence sees
/// the same faulted feed, so the assertions are unchanged — CI uses this
/// to prove output equivalence end to end under faults.
fn chaos_feed(feed: &Feed) -> Feed {
    use punctuated_cjq::stream::fault::{Fault, FaultPlan};
    match std::env::var("CJQ_CHAOS") {
        Ok(seed) => FaultPlan::new(seed.parse().unwrap_or(0xC4A0_5EED))
            .with(Fault::DuplicatePunctuations { prob: 0.15 })
            .with(Fault::DelayPunctuations { prob: 0.25, by: 3 })
            .with(Fault::TruncateTuples { prob: 0.05 })
            .apply(feed),
        Err(_) => feed.clone(),
    }
}

/// Runs `feed` on the legacy per-element path and on the batched path at
/// several batch sizes, asserting full observational equivalence. Returns
/// the legacy result.
fn assert_batched_equivalent(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    cfg: ExecConfig,
    feed: &Feed,
) -> RunResult {
    // Exercise the runtime certificate verifier alongside the equivalence
    // checks (recipes vs. static certificates, fast verdicts vs. oracle).
    let cfg = ExecConfig {
        verify_certificates: true,
        ..cfg
    };
    let feed = &chaos_feed(feed);
    let legacy = Executor::compile(query, schemes, plan, cfg)
        .expect("compile")
        .run(feed);
    let expected = sorted_outputs(&legacy.outputs);
    for batch_size in [1usize, 7, 256] {
        let bcfg = ExecConfig { batch_size, ..cfg };
        let batched = Executor::compile(query, schemes, plan, bcfg)
            .expect("compile batched")
            .run_batched(feed);
        let tag = format!("batch_size={batch_size}");
        assert_eq!(
            sorted_outputs(&batched.outputs),
            expected,
            "{tag}: output multiset"
        );
        assert_eq!(
            sorted_outputs(&batched.aggregates),
            sorted_outputs(&legacy.aggregates),
            "{tag}: aggregates"
        );
        let (b, l) = (&batched.metrics, &legacy.metrics);
        assert_eq!(b.tuples_in, l.tuples_in, "{tag}: tuples_in");
        assert_eq!(b.puncts_in, l.puncts_in, "{tag}: puncts_in");
        assert_eq!(b.violations, l.violations, "{tag}: violations");
        assert_eq!(
            b.violations_by_stream, l.violations_by_stream,
            "{tag}: violations_by_stream"
        );
        assert_eq!(b.outputs, l.outputs, "{tag}: outputs");
        assert_eq!(b.aggregates_out, l.aggregates_out, "{tag}: aggregates_out");
        assert_eq!(b.purged, l.purged, "{tag}: purged");
        assert_eq!(b.mirror_purged, l.mirror_purged, "{tag}: mirror_purged");
        assert_eq!(b.purge_cycles, l.purge_cycles, "{tag}: purge_cycles");
        assert_eq!(b.series, l.series, "{tag}: state-size sample series");
        assert_eq!(b.peak_join_state, l.peak_join_state, "{tag}: peak state");
        assert_eq!(b.peak_mirror, l.peak_mirror, "{tag}: peak mirror");
        assert!(b.batches_processed > 0, "{tag}: batched path was used");
        // Per-operator stats agree too (inputs, outputs, purge totals).
        let strip = |r: &RunResult| {
            r.operators
                .iter()
                .map(|o| (o.span.clone(), o.port_live.clone(), o.stats))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&batched), strip(&legacy), "{tag}: operator snapshots");
    }
    legacy
}

#[test]
fn auction_equivalence_across_cadences() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = auction::generate(&AuctionConfig {
        n_items: 80,
        bids_per_item: 3,
        concurrent: 8,
        ..AuctionConfig::default()
    });
    for cadence in [
        PurgeCadence::Eager,
        PurgeCadence::Lazy { batch: 16 },
        PurgeCadence::Adaptive { initial: 64 },
        PurgeCadence::Never,
    ] {
        let cfg = ExecConfig {
            cadence,
            ..ExecConfig::default()
        };
        assert_batched_equivalent(&query, &schemes, &plan, cfg, &feed);
    }
}

#[test]
fn sensor_network_and_trades_equivalence() {
    let (query, schemes) = sensor::sensor_query();
    let (feed, _) = sensor::generate(&SensorConfig {
        n_sensors: 8,
        epochs: 12,
        ..SensorConfig::default()
    });
    assert_batched_equivalent(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
        &feed,
    );

    let (query, schemes) = network::network_query();
    let feed = network::generate(&NetworkConfig::default());
    assert_batched_equivalent(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
        &feed,
    );

    let (query, schemes) = trades::trades_query();
    let (feed, _) = trades::generate(&TradesConfig::default());
    assert_batched_equivalent(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
        &feed,
    );
}

#[test]
fn window_semantics_equivalence() {
    // Window eviction is per-element; the batched path must cap runs at 1
    // and reproduce the same (lossy) results and eviction totals.
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = auction::generate(&AuctionConfig {
        n_items: 60,
        bids_per_item: 2,
        concurrent: 20,
        ..AuctionConfig::default()
    });
    let cfg = ExecConfig {
        window: Some(30),
        cadence: PurgeCadence::Never,
        ..ExecConfig::default()
    };
    assert_batched_equivalent(&query, &schemes, &plan, cfg, &feed);
}

#[test]
fn groupby_aggregates_equivalence() {
    // Example 1's aggregation over the auction join, legacy vs batched.
    let (query, schemes) = punctuated_cjq::core::fixtures::auction();
    let plan = Plan::mjoin_all(&query);
    let group = AttrRef {
        stream: StreamId(1),
        attr: AttrId(1),
    };
    let agg = Aggregate::Sum(AttrRef {
        stream: StreamId(1),
        attr: AttrId(2),
    });
    let mut feed = Feed::new();
    for i in 0..40i64 {
        feed.push(Tuple::of(
            0,
            vec![
                Value::Int(7),
                Value::Int(i),
                Value::str("x"),
                Value::Int(100),
            ],
        ));
        feed.push(Tuple::of(
            1,
            vec![Value::Int(3), Value::Int(i), Value::Int(5)],
        ));
        feed.push(Tuple::of(
            1,
            vec![Value::Int(4), Value::Int(i), Value::Int(9)],
        ));
        feed.push(Punctuation::with_constants(
            StreamId(0),
            4,
            &[(AttrId(1), Value::Int(i))],
        ));
        feed.push(Punctuation::with_constants(
            StreamId(1),
            3,
            &[(AttrId(1), Value::Int(i))],
        ));
    }
    let run = |batched: bool| {
        let exec = Executor::compile(&query, &schemes, &plan, ExecConfig::default())
            .expect("compile")
            .with_groupby(&[group], agg);
        if batched {
            exec.run_batched(&feed)
        } else {
            exec.run(&feed)
        }
    };
    let legacy = run(false);
    let batched = run(true);
    assert_eq!(legacy.aggregates.len(), 40);
    assert_eq!(
        sorted_outputs(&batched.aggregates),
        sorted_outputs(&legacy.aggregates)
    );
    assert_eq!(
        batched.metrics.aggregates_out,
        legacy.metrics.aggregates_out
    );
    assert_eq!(
        sorted_outputs(&batched.outputs),
        sorted_outputs(&legacy.outputs)
    );
}

#[test]
fn sinks_see_exactly_the_result_rows() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = auction::generate(&AuctionConfig {
        n_items: 50,
        bids_per_item: 3,
        concurrent: 6,
        ..AuctionConfig::default()
    });
    let legacy = Executor::compile(&query, &schemes, &plan, ExecConfig::default())
        .expect("compile")
        .run(&feed);
    let expected = sorted_outputs(&legacy.outputs);

    let mut collect = CollectSink::new();
    let res = Executor::compile(&query, &schemes, &plan, ExecConfig::default())
        .expect("compile")
        .run_with_sink(&feed, &mut collect);
    assert_eq!(sorted_outputs(&collect.rows), expected);
    assert!(res.outputs.is_empty(), "the sink owns the results");
    assert_eq!(res.metrics.outputs as usize, collect.rows.len());

    let mut count = CountSink::new();
    Executor::compile(&query, &schemes, &plan, ExecConfig::default())
        .expect("compile")
        .run_with_sink(&feed, &mut count);
    assert_eq!(count.count as usize, expected.len());

    let mut seen = Vec::new();
    let mut callback = CallbackSink::new(|row: &[Value]| seen.push(row.to_vec()));
    Executor::compile(&query, &schemes, &plan, ExecConfig::default())
        .expect("compile")
        .run_with_sink(&feed, &mut callback);
    assert_eq!(sorted_outputs(&seen), expected);
}

#[test]
fn sharded_batched_workers_match_sequential() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = auction::generate(&AuctionConfig {
        n_items: 80,
        bids_per_item: 3,
        concurrent: 8,
        ..AuctionConfig::default()
    });
    for cadence in [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 16 }] {
        let cfg = ExecConfig {
            cadence,
            ..ExecConfig::default()
        };
        let seq = Executor::compile(&query, &schemes, &plan, cfg)
            .expect("compile")
            .run(&feed);
        let expected = sorted_outputs(&seq.outputs);
        for p in [1usize, 4] {
            let sharded = ShardedExecutor::compile(&query, &schemes, &plan, cfg, p)
                .expect("compile sharded")
                .run(&feed);
            assert_eq!(
                sorted_outputs(&sharded.outputs),
                expected,
                "P={p}: output multiset"
            );
            assert_eq!(sharded.metrics.outputs, seq.metrics.outputs, "P={p}");
            assert_eq!(sharded.metrics.tuples_in, seq.metrics.tuples_in, "P={p}");
            assert_eq!(sharded.metrics.puncts_in, seq.metrics.puncts_in, "P={p}");
            assert_eq!(sharded.metrics.violations, seq.metrics.violations, "P={p}");
            assert_eq!(sharded.logical_join_state, 0, "P={p}: closed feed purges");
        }
        // record_outputs=false: counts must survive without materialized rows.
        let quiet = ExecConfig {
            record_outputs: false,
            ..cfg
        };
        for p in [1usize, 4] {
            let sharded = ShardedExecutor::compile(&query, &schemes, &plan, quiet, p)
                .expect("compile sharded")
                .run(&feed);
            assert!(sharded.outputs.is_empty());
            assert_eq!(sharded.metrics.outputs, seq.metrics.outputs, "P={p}: count");
        }
    }
}

#[test]
fn consecutive_same_key_runs_dedupe_probes() {
    // 1 item, then a run of 64 bids on it: the bid run probes the item index
    // with one distinct key, so 63 lookups are saved — and every bid still
    // joins.
    let (query, schemes) = punctuated_cjq::core::fixtures::auction();
    let plan = Plan::mjoin_all(&query);
    let mut feed = Feed::new();
    feed.push(Tuple::of(
        0,
        vec![
            Value::Int(7),
            Value::Int(1),
            Value::str("x"),
            Value::Int(100),
        ],
    ));
    for b in 0..64i64 {
        feed.push(Tuple::of(
            1,
            vec![Value::Int(b), Value::Int(1), Value::Int(1)],
        ));
    }
    let cfg = ExecConfig {
        batch_size: 128,
        // Keep the run unsplit: no purge or sample boundary inside it.
        cadence: PurgeCadence::Never,
        sample_every: 1024,
        ..ExecConfig::default()
    };
    let res = Executor::compile(&query, &schemes, &plan, cfg)
        .expect("compile")
        .run_batched(&feed);
    assert_eq!(res.metrics.outputs, 64);
    assert_eq!(res.metrics.probe_keys_deduped, 63);
}

#[test]
fn random_safe_queries_batched_equivalence() {
    let topologies = [
        Topology::Path,
        Topology::Star,
        Topology::Cycle,
        Topology::Random { extra_edges: 2 },
    ];
    proptest!(ProptestConfig::with_cases(12), |(
        seed in 0u64..1000,
        n in 2usize..6,
        topo_ix in 0usize..4,
        lazy in proptest::arbitrary::any::<bool>(),
    )| {
        let qcfg = RandomQueryConfig {
            n_streams: n,
            topology: topologies[topo_ix],
            seed,
            ..RandomQueryConfig::default()
        };
        let (query, schemes) = random_query::generate_safe(&qcfg);
        let plan = Plan::mjoin_all(&query);
        let cadence = if lazy { PurgeCadence::Lazy { batch: 7 } } else { PurgeCadence::Eager };
        let cfg = ExecConfig { cadence, ..ExecConfig::default() };
        let closed = keyed::generate(
            &query,
            &schemes,
            &KeyedConfig { rounds: 20, lag: 2, ..KeyedConfig::default() },
        );
        let legacy = assert_batched_equivalent(&query, &schemes, &plan, cfg, &closed);
        prop_assert_eq!(legacy.metrics.last().unwrap().join_state, 0);
    });
}
