//! Crash-recovery equivalence at the workspace surface: killing a
//! checkpointed replay after any prefix of the feed and resuming from the
//! newest valid snapshot must reproduce the uninterrupted run byte-for-byte
//! — same output sequence, same purge totals, same sampled state series.
//!
//! The chaos crate holds the deep matrix (workloads × cadences × shards ×
//! tiers × corruption); this suite covers the public API the way a user
//! would drive it: a crash-point sweep over the auction workload, and a
//! proptest sampling (checkpoint interval × crash offset × memory budget)
//! interleavings — the three knobs that together decide which snapshot a
//! crash lands on and how much cold-tier state rides along in it.
//!
//! `CJQ_CHAOS=<seed>` re-runs everything on fault-injected feeds (the same
//! faulted feed on both sides), as in the other equivalence suites.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::stream::exec::{
    BudgetPolicy, ExecConfig, Executor, PurgeCadence, RunResult, StateBudget,
};
use punctuated_cjq::stream::metrics::Metrics;
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::stream::tier::TierConfig;
use punctuated_cjq::workload::auction::{self, AuctionConfig};
use punctuated_cjq::workload::skewed::{self, SkewedConfig};

const SEED: u64 = 0xC4A0_5EED;

/// `CJQ_CHAOS=<seed>` wraps every feed in the chaos-suite fault plan.
fn chaos_feed(feed: &Feed) -> Feed {
    use punctuated_cjq::stream::fault::{Fault, FaultPlan};
    match std::env::var("CJQ_CHAOS") {
        Ok(seed) => FaultPlan::new(seed.parse().unwrap_or(SEED))
            .with(Fault::DuplicatePunctuations { prob: 0.15 })
            .with(Fault::DelayPunctuations { prob: 0.25, by: 3 })
            .with(Fault::TruncateTuples { prob: 0.05 })
            .apply(feed),
        Err(_) => feed.clone(),
    }
}

/// A fresh per-call checkpoint directory (pid + counter keeps parallel test
/// binaries and repeated proptest cases from colliding).
fn ckpt_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "cjq-rec-{}-{}-{tag}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

/// Everything the equivalence check compares, with wall time and the
/// checkpoint counters themselves (which legitimately differ between the
/// golden and recovered runs) zeroed out of the metrics.
fn digest(m: &Metrics) -> String {
    let mut m = m.clone();
    m.elapsed_ns = 0;
    m.checkpoints_written = 0;
    m.checkpoint_rows = 0;
    m.restores = 0;
    m.snapshot_fallbacks = 0;
    format!("{m:?}")
}

fn assert_equiv(label: &str, golden: &RunResult, recovered: &RunResult) {
    assert_eq!(
        recovered.outputs, golden.outputs,
        "{label}: output sequences must be byte-identical"
    );
    assert_eq!(
        digest(&recovered.metrics),
        digest(&golden.metrics),
        "{label}: metrics (purge totals, peaks, sampled series) must agree"
    );
}

/// Runs `feed` to completion with checkpointing into a fresh dir.
fn golden_run(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    cfg: ExecConfig,
    feed: &Feed,
    every: u64,
    tag: &str,
) -> RunResult {
    let dir = ckpt_dir(tag);
    let r = Executor::compile(query, schemes, plan, cfg)
        .expect("compile golden")
        .try_run_checkpointed(feed, &dir, every)
        .expect("golden checkpointed run");
    let _ = std::fs::remove_dir_all(&dir);
    r
}

/// Simulates a crash after `crash_after` elements (the process dies with
/// whatever snapshots were committed by then), then resumes the full feed
/// from the directory.
#[allow(clippy::too_many_arguments)]
fn crash_and_recover(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    cfg: ExecConfig,
    feed: &Feed,
    every: u64,
    crash_after: usize,
    tag: &str,
) -> RunResult {
    let dir = ckpt_dir(tag);
    {
        let prefix = Feed::from_elements(feed.elements()[..crash_after].to_vec());
        let _ = Executor::compile(query, schemes, plan, cfg)
            .expect("compile crashing run")
            .try_run_checkpointed(&prefix, &dir, every)
            .expect("prefix run");
        // The prefix result dies with the "process"; only `dir` survives.
    }
    let r = Executor::try_resume(&dir, query, schemes, plan, cfg, feed, every)
        .expect("resume from snapshot");
    let _ = std::fs::remove_dir_all(&dir);
    r
}

fn record_outputs(cfg: ExecConfig) -> ExecConfig {
    ExecConfig {
        record_outputs: true,
        ..cfg
    }
}

#[test]
fn auction_crash_point_sweep_is_byte_identical() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = chaos_feed(&auction::generate(&AuctionConfig::default()));
    let every = 97u64;
    let cfg = record_outputs(ExecConfig::default());
    let golden = golden_run(&query, &schemes, &plan, cfg, &feed, every, "sweep-g");
    assert!(
        golden.metrics.checkpoints_written > 0,
        "feed too short to exercise checkpointing"
    );
    let n = feed.elements().len();
    // Every checkpoint boundary plus a spread of mid-batch points.
    let mut points: Vec<usize> = (1..)
        .map(|k| (k * every) as usize)
        .take_while(|&p| p < n)
        .collect();
    points.extend([n / 7, n / 3, n / 2, n - 1]);
    points.sort_unstable();
    points.dedup();
    for crash_after in points {
        let recovered = crash_and_recover(
            &query,
            &schemes,
            &plan,
            cfg,
            &feed,
            every,
            crash_after,
            &format!("sweep-{crash_after}"),
        );
        assert_equiv(&format!("crash@{crash_after}"), &golden, &recovered);
    }
}

/// (interval × crash offset × memory budget) together decide which snapshot
/// a crash lands on and how much demoted cold state it carries; no sampled
/// combination may change a byte of the recovered run.
#[test]
fn interval_offset_budget_interleavings_recover_exactly() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig5();
    let plan = Plan::mjoin_all(&query);
    let feed = chaos_feed(&skewed::generate(
        &query,
        &schemes,
        &SkewedConfig {
            events: 400,
            hot_keys: 6,
            cold_keys: 80,
            cold_window: 24,
            punct_lag: 50,
            ..SkewedConfig::default()
        },
    ));
    let n = feed.elements().len();
    proptest!(ProptestConfig::with_cases(16), |(
        every in 16u64..200,
        offset_pct in 1u64..100,
        budget in 24usize..96,
        tiered in proptest::arbitrary::any::<bool>(),
        lazy in proptest::arbitrary::any::<bool>(),
    )| {
        let cfg = record_outputs(ExecConfig {
            cadence: if lazy { PurgeCadence::Lazy { batch: 16 } } else { PurgeCadence::Eager },
            state_budget: tiered.then_some(StateBudget {
                max_rows: budget,
                policy: BudgetPolicy::HardError,
            }),
            tiering: tiered.then_some(TierConfig {
                segment_rows: 32,
                ..TierConfig::default()
            }),
            ..ExecConfig::default()
        });
        let crash_after = ((n as u64 * offset_pct) / 100).max(1) as usize;
        let tag = format!("prop-{every}-{offset_pct}-{budget}-{tiered}-{lazy}");
        let golden = golden_run(&query, &schemes, &plan, cfg, &feed, every, &tag);
        let recovered = crash_and_recover(
            &query, &schemes, &plan, cfg, &feed, every, crash_after, &tag,
        );
        assert_equiv(&tag, &golden, &recovered);
    });
}
