//! Golden-file tests for the `cjq-lint` renderers over the bundled
//! workloads: the text and JSON reports are snapshotted under
//! `tests/golden/`, and the `examples/specs/*.cjq` files are kept in sync
//! with the workload query constructors.
//!
//! Regenerate all snapshots with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test lint_golden
//! ```

use std::path::PathBuf;

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::lint::{lint_plan, Code, LintReport};
use punctuated_cjq::parse::{parse_spec, to_spec};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};
use punctuated_cjq::workload::{auction, network, sensor, trades};

/// The linted corpus: every bundled workload plus a deterministic unsafe
/// random query. The keyed workload generates feeds for fixture queries and
/// has no query of its own — Figure 8 (its multi-attribute fixture) stands
/// in for it.
fn corpus() -> Vec<(&'static str, Cjq, SchemeSet)> {
    let (kq, kr) = punctuated_cjq::core::fixtures::fig8();
    let (uq, ur) = random_query::generate_unsafe(&RandomQueryConfig {
        n_streams: 4,
        arity: 2,
        topology: Topology::Path,
        seed: 7,
        ..RandomQueryConfig::default()
    });
    let mut all = vec![("keyed", kq, kr), ("unsafe_random", uq, ur)];
    for (name, (q, r)) in [
        ("auction", auction::auction_query()),
        ("sensor", sensor::sensor_query()),
        ("network", network::network_query()),
        ("trades", trades::trades_query()),
    ] {
        all.push((name, q, r));
    }
    all.sort_by_key(|(name, _, _)| *name);
    all
}

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

/// Compares `actual` against the golden file, rewriting it under
/// `UPDATE_GOLDEN=1`.
fn assert_golden(rel: &str, actual: &str) {
    let path = repo_path(rel);
    if update_golden() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {rel} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{rel} is stale; rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

fn lint(query: &Cjq, schemes: &SchemeSet) -> LintReport {
    lint_plan(query, schemes, &Plan::mjoin_all(query))
}

#[test]
fn lint_reports_match_golden_snapshots() {
    for (name, query, schemes) in corpus() {
        let report = lint(&query, &schemes);
        assert_golden(
            &format!("tests/golden/lint_{name}.txt"),
            &report.render_text(),
        );
        assert_golden(
            &format!("tests/golden/lint_{name}.json"),
            &(report.render_json() + "\n"),
        );
    }
}

#[test]
fn bundled_workloads_lint_clean_and_unsafe_fixture_is_flagged() {
    for (name, query, schemes) in corpus() {
        let report = lint(&query, &schemes);
        if name == "unsafe_random" {
            assert!(!report.safe);
            assert!(
                report.with_code(Code::UnsafeQuery).next().is_some(),
                "{name}: expected E001"
            );
            assert!(
                report.with_code(Code::RepairSuggestion).next().is_some(),
                "{name}: expected S001"
            );
        } else {
            assert!(report.safe, "{name} must be safe");
            assert!(
                report.is_clean(),
                "{name} must lint clean:\n{}",
                report.render_text()
            );
        }
    }
}

#[test]
fn example_specs_stay_in_sync_with_workload_constructors() {
    for (name, query, schemes) in corpus() {
        if name == "unsafe_random" {
            continue; // random fixture, not shipped as an example spec
        }
        let spec = to_spec(&query, &schemes);
        assert_golden(&format!("examples/specs/{name}.cjq"), &spec);
        // And the shipped spec round-trips through the parser to the same
        // safety verdict and lint report.
        let (q2, r2) = parse_spec(&spec).expect("spec parses");
        assert_eq!(
            lint(&query, &schemes).render_json(),
            lint(&q2, &r2).render_json(),
            "{name}: round-tripped spec lints differently"
        );
    }
}
