//! Golden-file tests for the state-bound analysis (`E003` / `W104` /
//! `I202`) over the contract-bearing example specs: the text and JSON
//! renderings are snapshotted under `tests/golden/`.
//!
//! Regenerate all snapshots with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test bounds_golden
//! ```

use std::path::PathBuf;

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::lint::{lint_plan_with_bounds, BoundsConfig, Code, Severity};
use punctuated_cjq::parse::parse_spec_full;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn update_golden() -> bool {
    std::env::var_os("UPDATE_GOLDEN").is_some()
}

fn assert_golden(rel: &str, actual: &str) {
    let path = repo_path(rel);
    if update_golden() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {rel} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "{rel} is stale; rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The bounds corpus: spec file, snapshot stem, and the memory budget (in
/// rows) the analysis checks the summed port bound against.
fn corpus() -> Vec<(&'static str, &'static str, Option<u64>)> {
    vec![
        // Fully-contracted auction: every bound quantified, all I202.
        ("auction_contracts", "bounds_auction", None),
        // Same spec against a budget below its 130-row total: W104.
        ("auction_contracts", "bounds_auction_budget", Some(100)),
        // Unsafe chain with contracts declared: E003 on the unpurgeable
        // ports, a two-step chained bound on the purgeable one.
        ("chain_contracts", "bounds_chain", None),
    ]
}

#[test]
fn bound_reports_match_golden_snapshots() {
    for (spec, stem, budget) in corpus() {
        let input = std::fs::read_to_string(repo_path(&format!("examples/specs/{spec}.cjq")))
            .expect("example spec exists");
        let (query, schemes, contracts) = parse_spec_full(&input).expect("spec parses");
        let cfg = BoundsConfig { contracts, budget };
        let report = lint_plan_with_bounds(&query, &schemes, &Plan::mjoin_all(&query), &cfg);
        assert_golden(&format!("tests/golden/{stem}.txt"), &report.render_text());
        assert_golden(
            &format!("tests/golden/{stem}.json"),
            &(report.render_json() + "\n"),
        );
    }
}

#[test]
fn bound_codes_fire_where_expected() {
    for (spec, stem, budget) in corpus() {
        let input = std::fs::read_to_string(repo_path(&format!("examples/specs/{spec}.cjq")))
            .expect("example spec exists");
        let (query, schemes, contracts) = parse_spec_full(&input).expect("spec parses");
        let cfg = BoundsConfig { contracts, budget };
        let report = lint_plan_with_bounds(&query, &schemes, &Plan::mjoin_all(&query), &cfg);
        // Every run emits per-port I202 info.
        assert!(
            report.with_code(Code::StateBound).next().is_some(),
            "{stem}: expected I202"
        );
        match stem {
            "bounds_auction" => {
                assert!(report.is_clean() || report.error_count() == 0, "{stem}");
                assert!(report.with_code(Code::UnboundedPort).next().is_none());
                assert!(report.with_code(Code::BoundExceedsBudget).next().is_none());
            }
            "bounds_auction_budget" => {
                let w104 = report
                    .with_code(Code::BoundExceedsBudget)
                    .next()
                    .expect("expected W104 under a 100-row budget");
                assert_eq!(w104.severity(), Severity::Warning);
                assert!(w104.message.contains("130"), "{}", w104.message);
            }
            "bounds_chain" => {
                let e003: Vec<_> = report.with_code(Code::UnboundedPort).collect();
                assert!(!e003.is_empty(), "{stem}: expected E003");
                assert!(e003.iter().all(|d| d.severity() == Severity::Error));
            }
            _ => unreachable!(),
        }
    }
}

/// Without declared contracts the bound pass stays informational: no E003
/// even on an unsafe query (nothing was promised, so nothing is violated).
#[test]
fn no_contracts_means_no_unbounded_errors() {
    let input = std::fs::read_to_string(repo_path("examples/specs/chain_contracts.cjq")).unwrap();
    let stripped: String = input
        .lines()
        .filter(|l| !l.starts_with("cadence") && !l.starts_with("domain"))
        .map(|l| format!("{l}\n"))
        .collect();
    let (query, schemes, contracts) = parse_spec_full(&stripped).expect("spec parses");
    assert!(contracts.is_empty());
    let cfg = BoundsConfig {
        contracts,
        budget: None,
    };
    let report = lint_plan_with_bounds(&query, &schemes, &Plan::mjoin_all(&query), &cfg);
    assert!(report.with_code(Code::UnboundedPort).next().is_none());
    assert!(report.with_code(Code::StateBound).next().is_some());
}
