//! Fuzzing for the spec parser (`src/parse.rs`).
//!
//! Two invariants: `parse_spec` never panics, whatever bytes it is handed
//! (errors are typed [`ParseError`]s with sane line/column positions), and
//! `parse_spec` ∘ `to_spec` is the identity on valid specs (with `to_spec`
//! a renderer fixpoint).

use proptest::prelude::*;

use punctuated_cjq::parse::{parse_spec, to_spec};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};

#[test]
fn arbitrary_bytes_never_panic_the_parser() {
    proptest!(
        ProptestConfig::with_cases(512),
        |(bytes in prop::collection::vec(any::<u8>(), 0..256))| {
            // Lossy decoding exercises replacement characters too.
            let input = String::from_utf8_lossy(&bytes).into_owned();
            if let Err(e) = parse_spec(&input) {
                prop_assert!(e.line <= input.lines().count());
            }
        }
    );
}

#[test]
fn keyword_soup_never_panics_and_positions_stay_sane() {
    // Structured-ish fragments reach much deeper into the grammar than raw
    // bytes: keywords, near-miss calls, stray delimiters, multi-byte chars.
    const FRAGMENTS: &[&str] = &[
        "stream",
        "join",
        "punctuate",
        "heartbeat",
        "a",
        "b",
        "1x",
        "(",
        ")",
        "(x)",
        "(x,",
        "()",
        "a.x",
        "a.",
        ".x",
        "=",
        "==",
        ",",
        "# comment",
        "a.x = b.y",
        "(x, y)",
        "é(ß)",
        "(((",
        "))",
    ];
    proptest!(
        ProptestConfig::with_cases(512),
        |(picks in prop::collection::vec(
            (0usize..FRAGMENTS.len(), any::<bool>()),
            0..40,
        ))| {
            let mut input = String::new();
            for &(i, newline) in &picks {
                input.push_str(FRAGMENTS[i]);
                input.push(if newline { '\n' } else { ' ' });
            }
            if let Err(e) = parse_spec(&input) {
                let lines: Vec<&str> = input.lines().collect();
                prop_assert!(e.line <= lines.len(), "line {} of {}", e.line, lines.len());
                if e.line > 0 && e.column > 0 {
                    let width = lines[e.line - 1].chars().count();
                    prop_assert!(
                        e.column <= width + 1,
                        "column {} past line width {width}",
                        e.column
                    );
                }
            }
        }
    );
}

#[test]
fn valid_specs_round_trip_through_render() {
    let topologies = [
        Topology::Path,
        Topology::Star,
        Topology::Cycle,
        Topology::Random { extra_edges: 1 },
    ];
    proptest!(
        ProptestConfig::with_cases(64),
        |(seed in 0u64..10_000, n in 2usize..6, topo_ix in 0usize..4)| {
            let (q1, r1) = random_query::generate_safe(&RandomQueryConfig {
                n_streams: n,
                topology: topologies[topo_ix],
                seed,
                ..RandomQueryConfig::default()
            });
            let rendered = to_spec(&q1, &r1);
            let (q2, r2) = match parse_spec(&rendered) {
                Ok(qr) => qr,
                Err(e) => return Err(TestCaseError::fail(format!(
                    "rendered spec failed to parse: {e}\n{rendered}"
                ))),
            };
            prop_assert_eq!(&q1, &q2, "query round-trip");
            prop_assert_eq!(&r1, &r2, "scheme round-trip");
            prop_assert_eq!(&rendered, &to_spec(&q2, &r2), "renderer fixpoint");
        }
    );
}
