//! Purge-strategy equivalence: [`PurgeStrategy::Indexed`] (delta-driven,
//! index-accelerated candidate collection) must behave *identically* to
//! [`PurgeStrategy::FullScan`] (the O(live-state) oracle) — same output
//! multiset, same live-state counts, same purged totals — while examining
//! far fewer candidate rows.
//!
//! Checked over random safe queries and every bundled workload, under
//! Eager/Lazy/Adaptive cadences and P ∈ {1, 4} shards. The trades workload
//! uses ordered (heartbeat) schemes and so exercises the range-index path.

use proptest::prelude::*;

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::stream::exec::{ExecConfig, Executor, PurgeCadence, RunResult};
use punctuated_cjq::stream::parallel::ShardedExecutor;
use punctuated_cjq::stream::purge::PurgeStrategy;
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::workload::auction::{self, AuctionConfig};
use punctuated_cjq::workload::keyed::{self, KeyedConfig};
use punctuated_cjq::workload::network::{self, NetworkConfig};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};
use punctuated_cjq::workload::sensor::{self, SensorConfig};
use punctuated_cjq::workload::trades::{self, TradesConfig};

fn sorted_outputs(outputs: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut sorted = outputs.to_vec();
    sorted.sort_unstable();
    sorted
}

/// `CJQ_CHAOS=<seed>` re-runs the whole suite on fault-injected feeds:
/// duplicated/delayed punctuations plus truncated tuples, admitted under
/// the default `Quarantine` policy. Every side of every equivalence sees
/// the same faulted feed, so the assertions are unchanged — CI uses this
/// to prove output equivalence end to end under faults.
fn chaos_feed(feed: &Feed) -> Feed {
    use punctuated_cjq::stream::fault::{Fault, FaultPlan};
    match std::env::var("CJQ_CHAOS") {
        Ok(seed) => FaultPlan::new(seed.parse().unwrap_or(0xC4A0_5EED))
            .with(Fault::DuplicatePunctuations { prob: 0.15 })
            .with(Fault::DelayPunctuations { prob: 0.25, by: 3 })
            .with(Fault::TruncateTuples { prob: 0.05 })
            .apply(feed),
        Err(_) => feed.clone(),
    }
}

fn run_with(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    cfg: ExecConfig,
    strategy: PurgeStrategy,
    feed: &Feed,
) -> RunResult {
    let cfg = ExecConfig {
        purge_strategy: strategy,
        // The equivalence suite doubles as the certificate-verifier
        // workout: recipes are checked against the static certificates and
        // purge verdicts re-checked against the explaining oracle.
        verify_certificates: true,
        ..cfg
    };
    // Arm the static bound certificate as well: contracts inferred from the
    // feed itself, enforced per element (violation = hard error = panic via
    // `run`), so both strategies also prove observed peaks ≤ static bounds.
    let contracts = punctuated_cjq::stream::certify::infer_contracts(query, schemes, feed);
    let bounds = punctuated_cjq::stream::certify::port_bound_certificate(
        query,
        schemes,
        &contracts,
        plan,
        cfg.scope,
        cfg.cadence,
    );
    let mut exec = Executor::compile(query, schemes, plan, cfg).expect("compile");
    exec.set_port_bounds(bounds);
    exec.run(feed)
}

/// Runs `feed` under both strategies (sequentially, plus P=4 sharded when
/// `shard` is set) and asserts full behavioural equivalence. Returns the
/// (full-scan, indexed) sequential results for extra per-test assertions.
fn assert_equivalent(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    cfg: ExecConfig,
    feed: &Feed,
    shard: bool,
) -> (RunResult, RunResult) {
    let feed = &chaos_feed(feed);
    let full = run_with(query, schemes, plan, cfg, PurgeStrategy::FullScan, feed);
    let indexed = run_with(query, schemes, plan, cfg, PurgeStrategy::Indexed, feed);
    assert_eq!(
        sorted_outputs(&full.outputs),
        sorted_outputs(&indexed.outputs),
        "output multiset differs between purge strategies"
    );
    assert_eq!(full.metrics.purged, indexed.metrics.purged, "purged totals");
    assert_eq!(
        full.metrics.mirror_purged, indexed.metrics.mirror_purged,
        "mirror purged totals"
    );
    let (f, i) = (
        full.metrics.last().expect("samples"),
        indexed.metrics.last().expect("samples"),
    );
    assert_eq!(f.join_state, i.join_state, "final live join state");
    assert_eq!(f.mirror, i.mirror, "final live mirror state");
    assert!(
        indexed.metrics.purge_candidates_examined <= full.metrics.purge_candidates_examined,
        "indexed examined {} > full-scan {}",
        indexed.metrics.purge_candidates_examined,
        full.metrics.purge_candidates_examined
    );
    if shard {
        for strategy in [PurgeStrategy::FullScan, PurgeStrategy::Indexed] {
            let cfg = ExecConfig {
                purge_strategy: strategy,
                verify_certificates: true,
                ..cfg
            };
            let res = ShardedExecutor::compile(query, schemes, plan, cfg, 4)
                .expect("compile sharded")
                .run(feed);
            assert_eq!(
                sorted_outputs(&res.outputs),
                sorted_outputs(&full.outputs),
                "P=4 {strategy:?}: output multiset differs from sequential"
            );
            assert_eq!(
                res.logical_join_state, f.join_state,
                "P=4 {strategy:?}: logical live join state"
            );
        }
    }
    (full, indexed)
}

#[test]
fn random_safe_queries_purge_identically() {
    let topologies = [
        Topology::Path,
        Topology::Star,
        Topology::Cycle,
        Topology::Random { extra_edges: 2 },
    ];
    let cadences = [
        PurgeCadence::Eager,
        PurgeCadence::Lazy { batch: 7 },
        PurgeCadence::Adaptive { initial: 16 },
    ];
    proptest!(ProptestConfig::with_cases(16), |(
        seed in 0u64..1000,
        n in 2usize..6,
        topo_ix in 0usize..4,
        cadence_ix in 0usize..3,
    )| {
        let qcfg = RandomQueryConfig {
            n_streams: n,
            topology: topologies[topo_ix],
            seed,
            ..RandomQueryConfig::default()
        };
        let (query, schemes) = random_query::generate_safe(&qcfg);
        let plan = Plan::mjoin_all(&query);
        let cfg = ExecConfig { cadence: cadences[cadence_ix], ..ExecConfig::default() };

        // Closed feed: every key punctuated on every scheme => all state dies
        // under both strategies.
        let closed = keyed::generate(
            &query,
            &schemes,
            &KeyedConfig { rounds: 25, lag: 2, ..KeyedConfig::default() },
        );
        let (_, indexed) = assert_equivalent(&query, &schemes, &plan, cfg, &closed, true);
        prop_assert_eq!(indexed.metrics.last().unwrap().join_state, 0);

        // Punctuation-free feed: no deltas, so the indexed path must examine
        // each row at most once (the fresh-slot watermark) and purge nothing.
        let open = keyed::generate(
            &query,
            &schemes,
            &KeyedConfig { rounds: 12, punctuate: false, ..KeyedConfig::default() },
        );
        let (_, indexed) = assert_equivalent(&query, &schemes, &plan, cfg, &open, false);
        prop_assert_eq!(indexed.metrics.purged, 0);
    });
}

#[test]
fn auction_workload_equivalent_and_examines_fewer_candidates() {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let feed = auction::generate(&AuctionConfig {
        n_items: 80,
        bids_per_item: 3,
        concurrent: 8,
        ..AuctionConfig::default()
    });
    for cadence in [
        PurgeCadence::Eager,
        PurgeCadence::Lazy { batch: 16 },
        PurgeCadence::Adaptive { initial: 32 },
    ] {
        let cfg = ExecConfig {
            cadence,
            ..ExecConfig::default()
        };
        let (full, indexed) = assert_equivalent(&query, &schemes, &plan, cfg, &feed, true);
        assert_eq!(indexed.metrics.last().unwrap().join_state, 0);
        // The acceptance bar: strictly fewer candidate rows examined than
        // the full-scan path's Σ live-state-per-cycle.
        assert!(indexed.metrics.purged > 0);
        assert!(
            indexed.metrics.purge_candidates_examined < full.metrics.purge_candidates_examined,
            "{cadence:?}: indexed {} !< full {}",
            indexed.metrics.purge_candidates_examined,
            full.metrics.purge_candidates_examined
        );
    }
}

#[test]
fn sensor_workload_equivalent_and_examines_fewer_candidates() {
    let (query, schemes) = sensor::sensor_query();
    let plan = Plan::mjoin_all(&query);
    let (feed, _) = sensor::generate(&SensorConfig {
        n_sensors: 8,
        epochs: 12,
        ..SensorConfig::default()
    });
    let (full, indexed) =
        assert_equivalent(&query, &schemes, &plan, ExecConfig::default(), &feed, true);
    assert!(indexed.metrics.purged > 0);
    assert!(
        indexed.metrics.purge_candidates_examined < full.metrics.purge_candidates_examined,
        "indexed {} !< full {}",
        indexed.metrics.purge_candidates_examined,
        full.metrics.purge_candidates_examined
    );
}

#[test]
fn network_and_trades_workloads_equivalent() {
    let (query, schemes) = network::network_query();
    let feed = network::generate(&NetworkConfig::default());
    assert_equivalent(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
        &feed,
        true,
    );

    // Trades uses ordered heartbeat schemes: threshold advances drive the
    // range-capable purge indexes.
    let (query, schemes) = trades::trades_query();
    let (feed, _) = trades::generate(&TradesConfig::default());
    assert_equivalent(
        &query,
        &schemes,
        &Plan::mjoin_all(&query),
        ExecConfig::default(),
        &feed,
        true,
    );
}
