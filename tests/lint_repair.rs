//! Repair acceptance: for unsafe random queries, the analyzer must (a) emit
//! at least one `E001` carrying a blocking-cut witness, and (b) propose an
//! `S001` repair whose application makes the TPG checker certify the query
//! safe (Theorem 5: the transformed punctuation graph condenses to a single
//! node).

use punctuated_cjq::core::tpg;
use punctuated_cjq::lint::{lint_query, minimal_repair, Code};
use punctuated_cjq::workload::random_query::{self, RandomQueryConfig, Topology};

fn unsafe_configs() -> Vec<RandomQueryConfig> {
    let mut cfgs = Vec::new();
    for topology in [
        Topology::Path,
        Topology::Star,
        Topology::Cycle,
        Topology::Random { extra_edges: 2 },
    ] {
        for seed in [1u64, 7, 23, 99] {
            for n_streams in [3usize, 4, 5] {
                cfgs.push(RandomQueryConfig {
                    n_streams,
                    arity: 2,
                    topology,
                    seed,
                    ..RandomQueryConfig::default()
                });
            }
        }
    }
    cfgs
}

#[test]
fn every_unsafe_fixture_gets_e001_with_witness_cut() {
    for cfg in unsafe_configs() {
        let (query, schemes) = random_query::generate_unsafe(&cfg);
        assert!(
            !punctuated_cjq::core::safety::is_query_safe(&query, &schemes),
            "fixture must be unsafe ({cfg:?})"
        );
        let report = lint_query(&query, &schemes);
        assert!(!report.safe, "{cfg:?}");
        let e001: Vec<_> = report.with_code(Code::UnsafeQuery).collect();
        assert!(!e001.is_empty(), "{cfg:?}: expected at least one E001");
        for d in &e001 {
            assert!(
                d.notes.iter().any(|n| n.contains("blocking cut")),
                "{cfg:?}: E001 without a blocking-cut witness:\n{}",
                report.render_text()
            );
        }
    }
}

#[test]
fn applying_the_s001_repair_certifies_the_query_safe() {
    for cfg in unsafe_configs() {
        let (query, schemes) = random_query::generate_unsafe(&cfg);
        let report = lint_query(&query, &schemes);
        let s001: Vec<_> = report.with_code(Code::RepairSuggestion).collect();
        assert_eq!(
            s001.len(),
            1,
            "{cfg:?}: connected unsafe queries always admit a repair"
        );
        let repair = minimal_repair(&query, &schemes)
            .expect("repairable")
            .into_iter();
        let mut fixed = schemes.clone();
        let mut added = 0usize;
        for scheme in repair {
            fixed.add(scheme);
            added += 1;
        }
        assert!(added > 0, "{cfg:?}: repair of an unsafe query is non-empty");
        let suggestion = s001[0].suggestion.as_ref().expect("S001 carries a fix");
        assert_eq!(
            suggestion.add.len(),
            added,
            "{cfg:?}: suggestion lines match the computed repair"
        );
        assert!(
            tpg::transform_query(&query, &fixed).is_single_node(),
            "{cfg:?}: repaired query must be TPG-certified safe"
        );
        assert!(
            lint_query(&query, &fixed).safe,
            "{cfg:?}: repaired query must lint safe"
        );
    }
}
