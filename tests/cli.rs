//! Integration tests for the `cjq-check` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(input: &str) -> (String, String, Option<i32>) {
    run_cli_args(input, &[])
}

fn run_cli_args(input: &str, args: &[&str]) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cjq-check"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cjq-check");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write spec");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

const SAFE_SPEC: &str = "\
stream item(sellerid, itemid, name, initialprice)
stream bid(bidderid, itemid, increase)
join item.itemid = bid.itemid
punctuate item(itemid)
punctuate bid(itemid)
";

const UNSAFE_SPEC: &str = "\
stream item(sellerid, itemid, name, initialprice)
stream bid(bidderid, itemid, increase)
join item.itemid = bid.itemid
punctuate bid(bidderid)
";

#[test]
fn safe_spec_exits_zero_with_report() {
    let (stdout, _, code) = run_cli(SAFE_SPEC);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("verdict: SAFE"));
    assert!(stdout.contains("item: purgeable"));
    assert!(stdout.contains("bid: purgeable"));
    assert!(stdout.contains("1 safe of 1"));
    assert!(stdout.contains("minimal scheme set: 2 of 2"));
}

#[test]
fn unsafe_spec_exits_one_with_witness() {
    let (stdout, _, code) = run_cli(UNSAFE_SPEC);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("verdict: UNSAFE"));
    assert!(stdout.contains("NOT purgeable"));
    assert!(stdout.contains("0 safe of 1"));
}

#[test]
fn parse_errors_exit_two_with_line_number() {
    let (_, stderr, code) = run_cli("stream a(x)\nfrobnicate\n");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
}

#[test]
fn parse_errors_carry_column_diagnostics() {
    // The unterminated call `a(x` starts at column 8.
    let (_, stderr, code) = run_cli("stream a(x\n");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("line 1:8:"), "stderr: {stderr}");
    // The unresolvable attr ref `b.y` sits at column 12 of line 2.
    let (_, stderr, code) = run_cli("stream a(x)\njoin a.x = b.y\n");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("line 2:12:"), "stderr: {stderr}");
}

#[test]
fn file_argument_and_missing_file() {
    let dir = std::env::temp_dir();
    let path = dir.join("cjq_check_cli_test.cjq");
    std::fs::write(&path, SAFE_SPEC).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_cjq-check"))
        .arg(&path)
        .output()
        .expect("run with file");
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_file(&path).ok();

    let out = Command::new(env!("CARGO_BIN_EXE_cjq-check"))
        .arg("/nonexistent/definitely_missing.cjq")
        .output()
        .expect("run with missing file");
    assert_eq!(out.status.code(), Some(3), "I/O errors exit 3, not 2");
}

#[test]
fn plan_flag_prints_the_chosen_plan() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cjq-check"))
        .arg("--plan")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .and_then(|mut c| {
            use std::io::Write as _;
            c.stdin.as_mut().unwrap().write_all(SAFE_SPEC.as_bytes())?;
            c.wait_with_output()
        })
        .expect("run cjq-check --plan");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("chosen plan: (S1 ⋈ S2)"),
        "stdout: {stdout}"
    );
}

const TRIANGLE_SPEC: &str = "\
stream e1(src, dst)
stream e2(src, dst)
stream e3(src, dst)
join e1.dst = e2.src
join e2.dst = e3.src
join e3.dst = e1.src
punctuate e1(dst)
punctuate e2(dst)
punctuate e3(dst)
";

#[test]
fn lint_plan_flag_prints_the_physical_plan() {
    // Cyclic spec: the register picks the worst-case-optimal path and
    // `lint --plan` reports it with the extension order; the I201 notice
    // carries the cycle witness but the lint still exits clean.
    let (stdout, _, code) = run_cli_args(TRIANGLE_SPEC, &["lint", "--plan"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("info[I201]"), "{stdout}");
    assert!(
        stdout.contains("witness cycle: e1 → e3 → e2 → e1"),
        "{stdout}"
    );
    assert!(stdout.contains("physical plan: wcoj"), "{stdout}");
    assert!(stdout.contains("extension order: {"), "{stdout}");

    // Acyclic spec: binary, no extension order.
    let (stdout, _, code) = run_cli_args(SAFE_SPEC, &["lint", "--plan"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("physical plan: binary"), "{stdout}");
    assert!(!stdout.contains("extension order"), "{stdout}");
}

#[test]
fn lint_plan_json_embeds_the_physical_plan() {
    let (stdout, _, code) = run_cli_args(TRIANGLE_SPEC, &["lint", "--plan", "--json"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"physical\": \"wcoj\""), "{stdout}");
    assert!(stdout.contains("\"extension_order\": \"{"), "{stdout}");
    assert!(stdout.contains("\"code\": \"I201\""), "{stdout}");
    assert_eq!(stdout.matches('{').count(), stdout.matches('}').count());

    // Without --plan the JSON shape is unchanged.
    let (stdout, _, code) = run_cli_args(TRIANGLE_SPEC, &["lint", "--json"]);
    assert_eq!(code, Some(0));
    assert!(!stdout.contains("\"physical\""), "{stdout}");
}

#[test]
fn json_flag_renders_machine_readable_verdict() {
    let (stdout, _, code) = run_cli_args(SAFE_SPEC, &["--json"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"safe\": true"));
    assert!(stdout.contains("\"purgeable\": true"));

    let (stdout, _, code) = run_cli_args(UNSAFE_SPEC, &["--json"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"safe\": false"));
    assert!(stdout.contains("\"unreachable\": [\"bid\"]"), "{stdout}");
}

#[test]
fn lint_subcommand_is_clean_on_safe_specs() {
    let (stdout, _, code) = run_cli_args(SAFE_SPEC, &["lint"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("lint: SAFE — 0 error(s)"), "{stdout}");
}

#[test]
fn lint_subcommand_flags_unsafe_specs_with_repair() {
    let (stdout, _, code) = run_cli_args(UNSAFE_SPEC, &["lint"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("error[E001]"), "{stdout}");
    assert!(stdout.contains("blocking cut"), "{stdout}");
    assert!(stdout.contains("suggestion[S001]"), "{stdout}");
    assert!(stdout.contains("add: punctuate bid(itemid)"), "{stdout}");
    assert!(stdout.contains("lint: UNSAFE"), "{stdout}");
}

#[test]
fn lint_json_emits_stable_codes() {
    let (stdout, _, code) = run_cli_args(UNSAFE_SPEC, &["lint", "--json"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"code\": \"E001\""), "{stdout}");
    assert!(stdout.contains("\"code\": \"S001\""), "{stdout}");
    assert!(stdout.contains("\"safe\": false"), "{stdout}");
}

#[test]
fn lint_parse_and_io_errors_keep_distinct_exit_codes() {
    let (_, stderr, code) = run_cli_args("stream a(x)\nfrobnicate\n", &["lint"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("line 2"), "stderr: {stderr}");
    let out = Command::new(env!("CARGO_BIN_EXE_cjq-check"))
        .args(["lint", "/nonexistent/definitely_missing.cjq"])
        .output()
        .expect("run lint with missing file");
    assert_eq!(out.status.code(), Some(3));
}

fn run_replay(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_cjq-check"))
        .arg("replay")
        .args(args)
        .output()
        .expect("run cjq-check replay");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn replay_reports_guard_statistics_in_json() {
    let (stdout, _, code) = run_replay(&["--faults", "--json", "auction"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"guard\""), "{stdout}");
    assert!(stdout.contains("\"quarantined\""), "{stdout}");
    assert!(stdout.contains("\"arity-mismatch\""), "{stdout}");
    assert!(stdout.contains("\"quarantined_by_stream\""), "{stdout}");
    // Truncation faults fire, so the quarantine count is nonzero.
    assert!(
        !stdout.contains("\"quarantined\": 0,"),
        "faults must quarantine something: {stdout}"
    );
}

#[test]
fn replay_without_faults_is_clean() {
    let (stdout, _, code) = run_replay(&["--json", "trades"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"quarantined\": 0,"), "{stdout}");
    assert!(stdout.contains("\"violations\": 0,"), "{stdout}");
}

#[test]
fn replay_strict_flag_fails_on_faulted_feeds() {
    // Permissive (the default and via the explicit flag) quarantines and
    // succeeds; strict turns the same fault into a failing run.
    let (_, _, code) = run_replay(&["--permissive", "--faults", "auction"]);
    assert_eq!(code, Some(0));
    let (_, stderr, code) = run_replay(&["--strict", "--faults", "auction"]);
    assert_eq!(code, Some(1), "stderr: {stderr}");
    assert!(stderr.contains("admission refused"), "stderr: {stderr}");
}

#[test]
fn replay_sharded_matches_policy_flags() {
    let (stdout, _, code) = run_replay(&["--shards", "4", "--faults", "--json", "sensor"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"shards\": 4"), "{stdout}");
    assert!(stdout.contains("\"guard\""), "{stdout}");
}

#[test]
fn replay_rejects_unknown_workloads_and_flags() {
    let (_, stderr, code) = run_replay(&["nosuch"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown workload"), "stderr: {stderr}");
    let (_, stderr, code) = run_replay(&["--frobnicate", "auction"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown replay flag"), "stderr: {stderr}");
    let (_, _, code) = run_replay(&[]);
    assert_eq!(code, Some(2), "missing workload is a usage error");
}

/// Writes each spec to a temp file and returns the paths (kept alive by the
/// returned guard struct, deleted on drop).
struct SpecFiles {
    paths: Vec<std::path::PathBuf>,
}

impl SpecFiles {
    fn new(tag: &str, specs: &[&str]) -> Self {
        let dir = std::env::temp_dir();
        let paths: Vec<std::path::PathBuf> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let p = dir.join(format!("cjq_cli_{tag}_{i}.cjq"));
                std::fs::write(&p, s).unwrap();
                p
            })
            .collect();
        SpecFiles { paths }
    }

    fn args(&self) -> Vec<&str> {
        self.paths.iter().map(|p| p.to_str().unwrap()).collect()
    }
}

impl Drop for SpecFiles {
    fn drop(&mut self) {
        for p in &self.paths {
            std::fs::remove_file(p).ok();
        }
    }
}

fn run_args(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_cjq-check"))
        .args(args)
        .output()
        .expect("run cjq-check");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn multi_spec_lint_exits_with_the_worst_verdict() {
    let files = SpecFiles::new("lint_multi", &[SAFE_SPEC, UNSAFE_SPEC]);
    let mut args = vec!["lint"];
    args.extend(files.args());
    let (stdout, _, code) = run_args(&args);
    assert_eq!(code, Some(1), "{stdout}");
    // Text mode headlines each spec.
    assert!(stdout.contains("== "), "{stdout}");
    assert!(stdout.contains("lint: SAFE"), "{stdout}");
    assert!(stdout.contains("lint: UNSAFE"), "{stdout}");

    let files = SpecFiles::new("lint_multi_safe", &[SAFE_SPEC, SAFE_SPEC]);
    let mut args = vec!["lint"];
    args.extend(files.args());
    let (_, _, code) = run_args(&args);
    assert_eq!(code, Some(0), "all-safe multi-spec lint exits 0");
}

#[test]
fn multi_spec_json_emits_one_report_array() {
    let files = SpecFiles::new("json_multi", &[SAFE_SPEC, UNSAFE_SPEC]);
    let mut args = vec!["--json"];
    args.extend(files.args());
    let (stdout, _, code) = run_args(&args);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.trim_end().ends_with(']'), "{stdout}");
    assert!(stdout.contains("\"safe\": true"), "{stdout}");
    assert!(stdout.contains("\"safe\": false"), "{stdout}");

    let mut args = vec!["lint", "--json"];
    args.extend(files.args());
    let (stdout, _, code) = run_args(&args);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"code\": \"E001\""), "{stdout}");
}

#[test]
fn replay_accepts_multiple_workloads() {
    let (stdout, _, code) = run_replay(&["auction", "trades"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("replay: auction"), "{stdout}");
    assert!(stdout.contains("replay: trades"), "{stdout}");

    let (stdout, _, code) = run_replay(&["--json", "auction", "sensor"]);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"workload\": \"auction\""), "{stdout}");
    assert!(stdout.contains("\"workload\": \"sensor\""), "{stdout}");

    // A bad name among good ones: worst exit code wins, good ones still run.
    let (stdout, stderr, code) = run_replay(&["auction", "nosuch"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stdout.contains("replay: auction"), "{stdout}");
    assert!(stderr.contains("unknown workload"), "{stderr}");
}

#[test]
fn serve_runs_a_shared_registry_over_spec_files() {
    let files = SpecFiles::new("serve_pair", &[SAFE_SPEC, SAFE_SPEC]);
    let mut args = vec!["serve", "--rounds", "24"];
    args.extend(files.args());
    let (stdout, _, code) = run_args(&args);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("2 queries admitted"), "{stdout}");
    // Two identical queries collapse onto one shared operator node.
    assert!(
        stdout.contains("1 shared operator node serving 2 subscriptions"),
        "{stdout}"
    );
}

#[test]
fn serve_reports_rejections_and_exits_nonzero() {
    // Serve admits against the *union* of all specs' schemes (the shared
    // feed carries every promise), so SAFE_SPEC would repair UNSAFE_SPEC.
    // This second query joins on attributes no scheme punctuates — unsafe
    // under any union that the pair can produce.
    let unsafe_even_unioned = "\
stream item(sellerid, itemid, name, initialprice)
stream bid(bidderid, itemid, increase)
join item.sellerid = bid.bidderid
punctuate bid(bidderid)
";
    let files = SpecFiles::new("serve_mixed", &[SAFE_SPEC, unsafe_even_unioned]);
    let mut args = vec!["serve", "--rounds", "8"];
    args.extend(files.args());
    let (stdout, stderr, code) = run_args(&args);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("1 query admitted, 1 rejected"), "{stdout}");
    assert!(stdout.contains("REJECTED"), "{stdout}");
    assert!(stderr.contains("query rejected"), "{stderr}");
}

#[test]
fn serve_json_and_shards() {
    let files = SpecFiles::new("serve_json", &[SAFE_SPEC, SAFE_SPEC]);
    let mut args = vec!["serve", "--rounds", "16", "--shards", "2", "--json"];
    args.extend(files.args());
    let (stdout, _, code) = run_args(&args);
    assert_eq!(code, Some(0), "{stdout}");
    assert!(stdout.contains("\"shared_nodes\": 1"), "{stdout}");
    assert!(stdout.contains("\"subscriptions\": 2"), "{stdout}");
    assert!(stdout.contains("\"shards\": 2"), "{stdout}");
    assert!(stdout.contains("\"outputs\""), "{stdout}");
}

#[test]
fn serve_requires_a_shared_catalog() {
    let other = "\
stream pkt(src, seqno)
stream ack(src, seqno)
join pkt.src = ack.src
punctuate pkt(src)
punctuate ack(src)
";
    let files = SpecFiles::new("serve_catalogs", &[SAFE_SPEC, other]);
    let mut args = vec!["serve"];
    args.extend(files.args());
    let (_, stderr, code) = run_args(&args);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("stream declarations differ"), "{stderr}");
}

#[test]
fn heartbeat_spec_parses_and_checks() {
    let spec = "\
stream trade(ts, sym, px)
stream quote(ts, sym, bid)
join trade.ts = quote.ts
join trade.sym = quote.sym
heartbeat trade(ts)
heartbeat quote(ts)
";
    let (stdout, _, code) = run_cli(spec);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("verdict: SAFE"));
}

#[test]
fn multi_attribute_spec_uses_generalized_check() {
    let spec = "\
stream pkt(src, seqno, len)
stream ack(src, seqno, rtt)
join pkt.src = ack.src
join pkt.seqno = ack.seqno
punctuate pkt(src, seqno)
punctuate ack(src, seqno)
";
    let (stdout, _, code) = run_cli(spec);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("Generalized check"));
    assert!(stdout.contains("verdict: SAFE"));
}
