//! Registry/standalone equivalence: the shared-state [`QueryRegistry`] must
//! be *observationally invisible* — every admitted query's outputs must be
//! byte-identical to what a dedicated [`Executor`] produces for that query
//! alone, across overlap levels, purge cadences, and shard counts, with
//! runtime certificate verification on throughout.
//!
//! Purge accounting is also checked: on punctuation-closed feeds the
//! registry's per-query purge totals must equal each standalone run's
//! (sharing changes *when* a row can go — the meet keeps a row until every
//! subscriber's recipe proves it dead — but on a closed feed everything
//! provably dead is gone by `finish`, so the totals meet), and the final
//! live state must be zero on both sides.
//!
//! `CJQ_CHAOS=<seed>` re-runs the suite on fault-injected feeds like the
//! other equivalence suites; output equivalence must survive unchanged.
//! Purge-total and drained-state assertions are skipped under chaos (a
//! faulted feed need not be punctuation-closed). A dedicated seeded fault
//! test runs unconditionally.

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::planner::fingerprint;
use punctuated_cjq::stream::exec::{ExecConfig, Executor, PurgeCadence, RunResult};
use punctuated_cjq::stream::fault::{Fault, FaultPlan};
use punctuated_cjq::stream::registry::{QueryRegistry, ShardedRegistry};
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::workload::multi::{self, MultiConfig};

fn base_cfg(cadence: PurgeCadence) -> ExecConfig {
    ExecConfig {
        cadence,
        record_outputs: true,
        verify_certificates: true,
        ..ExecConfig::default()
    }
}

fn chaos() -> bool {
    std::env::var("CJQ_CHAOS").is_ok()
}

/// Applies the suite-wide chaos plan when `CJQ_CHAOS` is set (same faults
/// as the shard-equivalence suite, so CI seeds exercise both).
fn chaos_feed(feed: &Feed) -> Feed {
    match std::env::var("CJQ_CHAOS") {
        Ok(seed) => FaultPlan::new(seed.parse().unwrap_or(0xC4A0_5EED))
            .with(Fault::DuplicatePunctuations { prob: 0.15 })
            .with(Fault::DelayPunctuations { prob: 0.25, by: 3 })
            .with(Fault::TruncateTuples { prob: 0.05 })
            .apply(feed),
        Err(_) => feed.clone(),
    }
}

fn standalone(
    query: &Cjq,
    schemes: &SchemeSet,
    plan: &Plan,
    cfg: ExecConfig,
    feed: &Feed,
) -> RunResult {
    Executor::compile(query, schemes, plan, cfg)
        .expect("tenant queries are safe")
        .run(feed)
}

fn sorted(outputs: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut s = outputs.to_vec();
    s.sort_unstable();
    s
}

/// The core matrix: overlap × cadence, sequential registry vs N dedicated
/// executors, byte-identical outputs (ordering included) per query.
#[test]
fn registry_matches_standalones_across_overlap_and_cadence() {
    for overlap in [0.0, 0.5, 1.0] {
        for cadence in [PurgeCadence::Eager, PurgeCadence::Lazy { batch: 7 }] {
            let mcfg = MultiConfig {
                queries: 4,
                overlap,
                rounds: 30,
                ..MultiConfig::default()
            };
            let tenant = multi::generate_queries(&mcfg);
            let feed = chaos_feed(&multi::generate_feed(&mcfg));
            let cfg = base_cfg(cadence);

            let mut reg = QueryRegistry::new(tenant.schemes.clone(), cfg);
            for (q, p) in &tenant.queries {
                reg.try_admit(q, p, None)
                    .expect("generated tenants are admissible");
            }
            reg.try_feed(&feed).expect("clean feed");
            let result = reg.finish();

            for ((q, p), reg_q) in tenant.queries.iter().zip(&result.queries) {
                let solo = standalone(q, &tenant.schemes, p, cfg, &feed);
                assert_eq!(
                    reg_q.outputs, solo.outputs,
                    "outputs must be byte-identical (overlap {overlap}, {cadence:?})"
                );
                assert_eq!(reg_q.stats.outputs, solo.metrics.outputs);
                if !chaos() {
                    assert_eq!(
                        reg_q.stats.purged, solo.metrics.purged,
                        "closed feeds drain both sides (overlap {overlap}, {cadence:?})"
                    );
                    assert_eq!(solo.metrics.last().unwrap().join_state, 0);
                }
            }
            if !chaos() {
                assert_eq!(
                    result.metrics.last().unwrap().join_state,
                    0,
                    "registry must end drained on closed feeds"
                );
            }
        }
    }
}

/// Sharded registry (P=4) vs standalone executors: output multisets match
/// per query (shards interleave, so order is not preserved).
#[test]
fn sharded_registry_matches_standalones() {
    for overlap in [0.0, 1.0] {
        let mcfg = MultiConfig {
            queries: 3,
            overlap,
            rounds: 24,
            ..MultiConfig::default()
        };
        let tenant = multi::generate_queries(&mcfg);
        let feed = chaos_feed(&multi::generate_feed(&mcfg));
        let cfg = base_cfg(PurgeCadence::Eager);

        let sharded = ShardedRegistry::compile(&tenant.queries, &tenant.schemes, cfg, 4)
            .expect("admissible")
            .try_run(&feed)
            .expect("clean feed");
        for ((q, p), reg_q) in tenant.queries.iter().zip(&sharded.queries) {
            let solo = standalone(q, &tenant.schemes, p, cfg, &feed);
            assert_eq!(
                sorted(&reg_q.outputs),
                sorted(&solo.outputs),
                "sharded output multiset (overlap {overlap})"
            );
        }
    }
}

/// Mid-stream admission and retirement. With full overlap every tenant
/// shares one node, so:
/// * a query retired halfway has exactly the outputs of a standalone run
///   over the feed prefix it saw;
/// * a query admitted halfway has exactly the base query's outputs over the
///   suffix (shared history included — its probe index predates it).
#[test]
fn mid_stream_admission_and_retirement() {
    let mcfg = MultiConfig {
        queries: 2,
        overlap: 1.0,
        rounds: 30,
        ..MultiConfig::default()
    };
    let tenant = multi::generate_queries(&mcfg);
    let feed = multi::generate_feed(&mcfg);
    let cfg = base_cfg(PurgeCadence::Eager);
    let split = feed.elements().len() / 2;

    let (q0, p0) = &tenant.queries[0];
    let (q1, p1) = &tenant.queries[1];
    let mut reg = QueryRegistry::new(tenant.schemes.clone(), cfg);
    let id0 = reg.try_admit(q0, p0, None).unwrap();
    let id1 = reg.try_admit(q1, p1, None).unwrap();
    for e in &feed.elements()[..split] {
        reg.try_push(e).expect("clean feed");
    }
    let late_id = reg.try_admit(q0, p0, None).expect("re-admission is fine");
    assert!(reg.retire(id1), "retiring a live query succeeds");
    assert!(!reg.is_live(id1));
    let prefix_outputs_q1 = reg.outputs(id1).unwrap().to_vec();
    for e in &feed.elements()[split..] {
        reg.try_push(e).expect("clean feed");
    }
    let result = reg.finish();

    // Full-feed tenant: unchanged by its neighbors' churn.
    let solo_full = standalone(q0, &tenant.schemes, p0, cfg, &feed);
    assert_eq!(result.queries[id0.0].outputs, solo_full.outputs);

    // Retired tenant == standalone over the prefix it processed.
    let mut prefix_feed = Feed::new();
    for e in &feed.elements()[..split] {
        prefix_feed.push(e.clone());
    }
    let solo_prefix = standalone(q1, &tenant.schemes, p1, cfg, &prefix_feed);
    assert_eq!(prefix_outputs_q1, solo_prefix.outputs);
    assert_eq!(result.queries[id1.0].outputs, solo_prefix.outputs);

    // Late tenant == the base tenant's post-admission suffix.
    let late = &result.queries[late_id.0].outputs;
    let full = &result.queries[id0.0].outputs;
    assert!(late.len() <= full.len());
    assert_eq!(late.as_slice(), &full[full.len() - late.len()..]);
}

/// Unconditional seeded fault run (the `replay --faults` plan): truncated
/// tuples are quarantined identically on both sides and outputs still match
/// byte for byte. Identical queries keep the purge meet degenerate, so the
/// totals are comparable even though dropped punctuations leave the feed
/// unclosed.
#[test]
fn seeded_fault_run_matches_standalones() {
    let mcfg = MultiConfig {
        queries: 3,
        overlap: 1.0,
        rounds: 40,
        ..MultiConfig::default()
    };
    let tenant = multi::generate_queries(&mcfg);
    let feed = FaultPlan::new(0xC4A0_5EED)
        .with(Fault::TruncateTuples { prob: 0.15 })
        .with(Fault::DropPunctuations { prob: 0.1 })
        .apply(&multi::generate_feed(&mcfg));
    let cfg = base_cfg(PurgeCadence::Eager);

    let mut reg = QueryRegistry::new(tenant.schemes.clone(), cfg);
    for (q, p) in &tenant.queries {
        reg.try_admit(q, p, None).unwrap();
    }
    reg.try_feed(&feed).expect("quarantine admits the rest");
    let result = reg.finish();

    for ((q, p), reg_q) in tenant.queries.iter().zip(&result.queries) {
        let solo = standalone(q, &tenant.schemes, p, cfg, &feed);
        assert_eq!(reg_q.outputs, solo.outputs);
        assert_eq!(reg_q.stats.purged, solo.metrics.purged);
        assert_eq!(result.metrics.quarantined, solo.metrics.quarantined);
    }
}

/// The planner's static sub-plan fingerprints must predict the registry's
/// physical sharing exactly: distinct fingerprints == interned nodes,
/// total fingerprints == per-query subscriptions.
#[test]
fn fingerprints_predict_registry_sharing() {
    for overlap in [0.0, 0.5, 1.0] {
        let mcfg = MultiConfig {
            queries: 5,
            overlap,
            ..MultiConfig::default()
        };
        let tenant = multi::generate_queries(&mcfg);
        // The registry interns binary-shaped nodes only.
        let specs: Vec<(&Cjq, &Plan, fingerprint::PlanShape)> = tenant
            .queries
            .iter()
            .map(|(q, p)| (q, p, fingerprint::PlanShape::Binary))
            .collect();
        let predicted = fingerprint::sharing_report(&specs);

        let mut reg = QueryRegistry::new(tenant.schemes.clone(), base_cfg(PurgeCadence::Eager));
        for (q, p) in &tenant.queries {
            reg.try_admit(q, p, None).unwrap();
        }
        assert_eq!(
            predicted.shared_nodes,
            reg.live_nodes(),
            "overlap {overlap}: fingerprint interning must match the registry"
        );
        assert_eq!(predicted.subscriptions, reg.subscribed_nodes());
    }
}
