//! Plan exploration (§5.2): enumerate the safe plans of a query, cost them,
//! pick the best under different objectives, and find minimal scheme sets.
//!
//! Uses the paper's Figure 5/7 query — where only the MJoin plan is safe —
//! and a 4-cycle query with rich punctuation coverage, where many plans are
//! safe and the cost model has real choices to make.
//!
//! ```sh
//! cargo run --example plan_explorer
//! ```

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::planner::choose::{choose_plan, Objective};
use punctuated_cjq::planner::cost::{CostModel, Stats};
use punctuated_cjq::planner::enumerate::PlanSpace;
use punctuated_cjq::planner::scheme_select;

fn explore(query: &Cjq, schemes: &SchemeSet, stats: Stats, label: &str) {
    println!("=== {label} ===");
    let mut space = PlanSpace::new(query, schemes);
    let all = space.count_all_plans();
    let safe = space.count_safe_plans();
    println!("plans: {all} total (cross-product-free), {safe} safe");

    if safe == 0 {
        println!("no safe plan: the query register must reject this query\n");
        return;
    }
    let model = CostModel::new(query, schemes, stats.clone());
    for plan in space.enumerate_safe_plans(8) {
        let cost = model.estimate(&plan);
        println!(
            "  {:<40} data-mem {:>8.1}  punct-mem {:>7.1}  work {:>8.2}",
            plan.to_string(),
            cost.data_memory,
            cost.punct_memory,
            cost.work
        );
    }
    for objective in [
        Objective::MinDataMemory,
        Objective::MinTotalMemory,
        Objective::MaxThroughput,
    ] {
        let chosen = choose_plan(query, schemes, stats.clone(), objective, 500).unwrap();
        println!(
            "  best under {:?}: {} (of {} safe plans)",
            objective, chosen.plan, chosen.considered
        );
    }

    // Plan Parameter I: which schemes are actually needed?
    match scheme_select::minimum_safe_subset(query, schemes) {
        Some(min) => println!(
            "  minimal scheme set: {} of {} schemes suffice: {min}",
            min.len(),
            schemes.len()
        ),
        None => println!("  no scheme subset keeps the query safe"),
    }
    println!();
}

fn four_cycle() -> (Cjq, SchemeSet) {
    let mut cat = Catalog::new();
    for name in ["orders", "payments", "shipments", "invoices"] {
        cat.add_stream(StreamSchema::new(name, ["id", "next"]).unwrap());
    }
    let q = Cjq::new(
        cat,
        vec![
            JoinPredicate::between(0, 1, 1, 0).unwrap(),
            JoinPredicate::between(1, 1, 2, 0).unwrap(),
            JoinPredicate::between(2, 1, 3, 0).unwrap(),
            JoinPredicate::between(3, 1, 0, 0).unwrap(),
        ],
    )
    .unwrap();
    let r = SchemeSet::from_schemes((0..4).flat_map(|s| {
        [
            PunctuationScheme::on(s, &[0]).unwrap(),
            PunctuationScheme::on(s, &[1]).unwrap(),
        ]
    }));
    (q, r)
}

fn main() {
    // Figure 5/7: safe query, but only one safe plan shape.
    let (q, r) = punctuated_cjq::core::fixtures::fig5();
    explore(
        &q,
        &r,
        Stats::uniform(3, 1.0, 10.0, 0.1, 0.2),
        "Figure 5 triangle",
    );

    // Figure 3's scheme set: unsafe — must be rejected.
    let (q, r) = punctuated_cjq::core::fixtures::fig3();
    explore(
        &q,
        &r,
        Stats::uniform(3, 1.0, 10.0, 0.1, 0.2),
        "Figure 3 (unsafe scheme set)",
    );

    // A 4-cycle with full coverage: many safe plans; skewed rates matter.
    let (q, r) = four_cycle();
    let mut stats = Stats::uniform(4, 1.0, 10.0, 0.1, 0.1);
    stats.rate[2] = 50.0; // shipments is hot
    explore(&q, &r, stats, "4-cycle with one hot stream");
}
