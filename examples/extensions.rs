//! Beyond the paper's core results: the §7 future-work directions this
//! library implements.
//!
//! * **Disjunctive join predicates** (future work ii): safety checking and a
//!   runtime join for `A.x = B.x ∨ A.y = B.y`-style predicates.
//! * **Other stateful operators** (future work iii): punctuation-aware
//!   duplicate elimination.
//! * **Window semantics** (related work [3, 7]): the baseline the paper
//!   contrasts punctuations against, with the memory/completeness trade-off.
//!
//! ```sh
//! cargo run --example extensions
//! ```

use punctuated_cjq::core::disjunctive::{self, DisjunctiveCjq, DisjunctiveGroup};
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::stream::disjoin::DisjunctiveJoin;
use punctuated_cjq::stream::distinct::Distinct;
use punctuated_cjq::stream::exec::{ExecConfig, Executor, PurgeCadence};
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::stream::tuple::Tuple;

fn ival(v: i64) -> Value {
    Value::Int(v)
}

fn disjunctive_demo() {
    println!("--- disjunctive predicates (future work ii) ---");
    // Contact events match if either the device id or the session id agrees.
    let mut cat = Catalog::new();
    cat.add_stream(StreamSchema::new("login", ["device", "session"]).unwrap());
    cat.add_stream(StreamSchema::new("alert", ["device", "session"]).unwrap());
    let group = DisjunctiveGroup::new(vec![
        JoinPredicate::between(0, 0, 1, 0).unwrap(),
        JoinPredicate::between(0, 1, 1, 1).unwrap(),
    ])
    .unwrap();
    let query = DisjunctiveCjq::new(cat, vec![group]).unwrap();

    // Punctuations on only one alternative cannot make the query safe...
    let partial = SchemeSet::from_schemes([
        PunctuationScheme::on(0, &[0]).unwrap(),
        PunctuationScheme::on(1, &[0]).unwrap(),
    ]);
    println!(
        "device-only punctuations: safe = {}",
        disjunctive::is_query_safe(&query, &partial)
    );
    // ... both alternatives on both sides are needed.
    let full = SchemeSet::from_schemes([
        PunctuationScheme::on(0, &[0]).unwrap(),
        PunctuationScheme::on(0, &[1]).unwrap(),
        PunctuationScheme::on(1, &[0]).unwrap(),
        PunctuationScheme::on(1, &[1]).unwrap(),
    ]);
    println!(
        "both-alternative punctuations: safe = {}",
        disjunctive::is_query_safe(&query, &full)
    );

    // Runtime: the OR-join purges a tuple once BOTH alternatives are closed.
    let mut join = DisjunctiveJoin::new(&query, &full);
    join.process_tuple(&Tuple::of(0, [ival(7), ival(100)]));
    let out = join.process_tuple(&Tuple::of(1, [ival(7), ival(999)])); // via device
    println!("match via device alternative: {} result(s)", out.len());
    join.process_punctuation(
        &Punctuation::with_constants(StreamId(1), 2, &[(AttrId(0), ival(7))]),
        0,
    );
    println!(
        "after device=7 punctuation: live = {} (session alt still open)",
        join.live()
    );
    join.process_punctuation(
        &Punctuation::with_constants(StreamId(1), 2, &[(AttrId(1), ival(100))]),
        1,
    );
    println!(
        "after session=100 punctuation: live = {} (purged)",
        join.live()
    );
    println!();
}

fn distinct_demo() {
    println!("--- punctuation-aware DISTINCT (future work iii) ---");
    // Distinct bidders per item; itemid punctuations retire closed auctions.
    let schemes = SchemeSet::from_schemes([PunctuationScheme::on(1, &[1]).unwrap()]);
    let mut d = Distinct::new(StreamId(1), &[AttrId(0), AttrId(1)], &schemes);
    println!(
        "DISTINCT(bidderid, itemid) safe under itemid punctuations: {}",
        d.is_safe()
    );
    let mut peak = 0;
    for item in 0..1000i64 {
        for bidder in 0..3 {
            d.process_tuple(&[ival(bidder), ival(item), ival(1)]);
            d.process_tuple(&[ival(bidder), ival(item), ival(2)]); // duplicate key
        }
        peak = peak.max(d.state_size());
        d.process_punctuation(&Punctuation::with_constants(
            StreamId(1),
            3,
            &[(AttrId(1), ival(item))],
        ));
    }
    println!(
        "6000 tuples: {} emitted, {} suppressed, peak seen-set {} (bounded), final {}",
        d.stats.emitted,
        d.stats.suppressed,
        peak,
        d.state_size()
    );
    println!();
}

fn window_demo() {
    println!("--- sliding-window baseline (related work) ---");
    let (q, r) = punctuated_cjq::core::fixtures::auction();
    // Items long before their bids: windows must span the gap or lose joins.
    let mut feed = Feed::new();
    for i in 0..100i64 {
        feed.push(Tuple::of(0, vec![ival(1), ival(i), "x".into(), ival(10)]));
    }
    for i in 0..100i64 {
        feed.push(Tuple::of(1, vec![ival(2), ival(i), ival(5)]));
    }
    for window in [None, Some(300u64), Some(50)] {
        let cfg = ExecConfig {
            window,
            cadence: PurgeCadence::Never,
            ..ExecConfig::default()
        };
        let exec = Executor::compile(&q, &r, &Plan::mjoin_all(&q), cfg).unwrap();
        let m = exec.run(&feed).metrics;
        println!(
            "window {:>9}: outputs {:>3}/100, peak state {:>3}",
            window.map_or("none".to_owned(), |w| w.to_string()),
            m.outputs,
            m.peak_join_state
        );
    }
    println!(
        "(punctuations purge by semantics; windows purge by age and can silently lose results)"
    );
}

fn watermark_demo() {
    println!();
    println!("--- heartbeat/watermark punctuations (related work [11]) ---");
    let (q, r) = punctuated_cjq::workload::trades::trades_query();
    println!(
        "trade ⋈ quote ON (ts, sym) with ordered `ts ≤ T` schemes: safe = {}",
        punctuated_cjq::core::safety::is_query_safe(&q, &r)
    );
    let cfg = punctuated_cjq::workload::trades::TradesConfig::default();
    let (feed, expected) = punctuated_cjq::workload::trades::generate(&cfg);
    let exec = Executor::compile(&q, &r, &Plan::mjoin_all(&q), ExecConfig::default()).unwrap();
    let m = exec.run(&feed).metrics;
    println!(
        "{} ticks: {} matches (expected {}), peak join state {}, peak punctuation store {} \
         (one threshold per stream!)",
        cfg.ticks, m.outputs, expected, m.peak_join_state, m.peak_punct_entries
    );
}

fn main() {
    disjunctive_demo();
    distinct_demo();
    window_demo();
    watermark_demo();
}
