//! An interactive walkthrough of the chained purge strategy (paper §3.2's
//! Figure 3 example), using the purge engine's `explain` API to show *why*
//! a tuple is still held at each point.
//!
//! The scenario: `S1(A,B) ⋈ S2(B,C) ⋈ S3(C,A)` with `S1.B = S2.B` and
//! `S2.C = S3.C`; schemes on `S2.B` and `S3.C`. We track the fate of the
//! tuple `t = S1(a=1, b=1)` exactly as the paper does: first `S2` must be
//! guarded with `(b1, *)`, then `S3` with one punctuation per *joinable*
//! `c` in `T_t[Υ_S2]`.
//!
//! ```sh
//! cargo run --example purge_explainer
//! ```

use std::collections::HashMap;

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::core::purge_plan;
use punctuated_cjq::stream::purge::{CheckOutcome, PurgeEngine};
use punctuated_cjq::stream::tuple::Tuple;

fn show(
    engine: &PurgeEngine,
    recipe: &punctuated_cjq::stream::purge::CompiledRecipe,
    roots: &HashMap<StreamId, Vec<Value>>,
    when: &str,
) {
    match engine.explain(recipe, roots) {
        CheckOutcome::Purgeable => println!("{when}: t is provably dead -> PURGE"),
        CheckOutcome::MissingCoverage {
            step,
            target,
            missing,
        } => {
            let combos: Vec<String> = missing
                .iter()
                .map(|c| {
                    let vals: Vec<String> = c.iter().map(Value::to_string).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            println!(
                "{when}: KEEP — step {} needs punctuations from {} covering {}",
                step + 1,
                target,
                combos.join(", ")
            );
        }
        CheckOutcome::TooManyCombinations {
            step,
            target,
            required,
        } => {
            println!(
                "{when}: KEEP — step {} would need {required} combinations from {target} \
                 (over the configured limit)",
                step + 1
            );
        }
    }
}

fn main() {
    let (query, schemes) = punctuated_cjq::core::fixtures::fig3();
    let streams: Vec<StreamId> = query.stream_ids().collect();

    // The compile-time recipe (Theorem 1's constructive direction).
    let recipe = purge_plan::derive_recipe(&query, &schemes, &streams, StreamId(0))
        .expect("S1 is purgeable in Fig. 3");
    print!("{}", recipe.explain(&query));
    println!();

    let mut engine = PurgeEngine::new(&query, &schemes, None, 100_000);
    let compiled = engine
        .compile_port_recipe(&query, &schemes, &streams, &[StreamId(0)])
        .unwrap();

    // t = S1(a=1, b=1); two joinable S2 tuples (b=1, c=10), (b=1, c=20); one
    // non-joinable S2 tuple (b=9, c=30).
    let t = Tuple::of(0, [Value::Int(1), Value::Int(1)]);
    engine.observe_tuple(&t);
    for (b, c) in [(1, 10), (1, 20), (9, 30)] {
        engine.observe_tuple(&Tuple::of(1, [Value::Int(b), Value::Int(c)]));
    }
    let roots = HashMap::from([(StreamId(0), t.values.clone())]);

    show(&engine, &compiled, &roots, "before any punctuation");

    // Step 1 satisfied: (b=1, *) from S2.
    engine.observe_punctuation(
        &Punctuation::with_constants(StreamId(1), 2, &[(AttrId(0), Value::Int(1))]),
        0,
    );
    show(&engine, &compiled, &roots, "after S2 punctuates b=1");

    // Step 2 half satisfied: (c=10, *) from S3 — c=20 still joinable.
    engine.observe_punctuation(
        &Punctuation::with_constants(StreamId(2), 2, &[(AttrId(0), Value::Int(10))]),
        1,
    );
    show(&engine, &compiled, &roots, "after S3 punctuates c=10");

    // The punctuation for the non-joinable c=30 does NOT help (the paper's
    // point: only joinable values are required).
    engine.observe_punctuation(
        &Punctuation::with_constants(StreamId(2), 2, &[(AttrId(0), Value::Int(30))]),
        2,
    );
    show(
        &engine,
        &compiled,
        &roots,
        "after S3 punctuates c=30 (irrelevant)",
    );

    // Step 2 fully satisfied: (c=20, *).
    engine.observe_punctuation(
        &Punctuation::with_constants(StreamId(2), 2, &[(AttrId(0), Value::Int(20))]),
        3,
    );
    show(&engine, &compiled, &roots, "after S3 punctuates c=20");
}
