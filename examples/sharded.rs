//! Hash-partitioned parallel execution of the auction query.
//!
//! Runs the same punctuated auction feed through the sequential [`Executor`]
//! and through the [`ShardedExecutor`] at a chosen shard count, then prints
//! both result sets side by side: the output multisets must match, and the
//! closed feed must leave zero live state in both engines.
//!
//! ```sh
//! cargo run --release --example sharded        # default: 4 shards
//! cargo run --release --example sharded -- 8   # custom shard count
//! ```

use std::time::Instant;

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::stream::exec::{ExecConfig, Executor};
use punctuated_cjq::stream::parallel::{Partitioning, ShardedExecutor};
use punctuated_cjq::stream::sink::CollectSink;
use punctuated_cjq::workload::auction::{self, AuctionConfig};

fn main() {
    let shards: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("shard count must be a number"))
        .unwrap_or(4);

    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let cfg = ExecConfig::default();
    let feed = auction::generate(&AuctionConfig {
        n_items: 400,
        bids_per_item: 4,
        concurrent: 96,
        ..AuctionConfig::default()
    });

    let part = Partitioning::for_query(&query, shards);
    println!("partitioning over {shards} shards:");
    for s in query.stream_ids() {
        match part.attr[s.0] {
            Some(a) => println!("  {}: hash-partitioned on attribute {}", s.0, a.0),
            None => println!("  {}: broadcast to every shard", s.0),
        }
    }

    // Sequential, through the vectorized micro-batch path: results stream
    // into a caller-chosen sink instead of accumulating in the run result.
    let t = Instant::now();
    let mut seq_sink = CollectSink::new();
    let seq = Executor::compile(&query, &schemes, &plan, cfg)
        .unwrap()
        .run_with_sink(&feed, &mut seq_sink);
    let seq_elapsed = t.elapsed();

    // Sharded: one sink per shard (each result row is produced by exactly
    // one shard, so concatenating the sinks yields the full result set).
    let t = Instant::now();
    let (shd, shard_sinks) = ShardedExecutor::compile(&query, &schemes, &plan, cfg, shards)
        .unwrap()
        .run_with_sinks(&feed, |_shard| CollectSink::new());
    let shd_elapsed = t.elapsed();

    println!(
        "\nfeed: {} elements ({} punctuations)",
        feed.len(),
        feed.punctuation_count()
    );
    println!(
        "sequential: {:>6} outputs, final state {}, {:?}",
        seq.metrics.outputs,
        seq.metrics.last().unwrap().join_state,
        seq_elapsed
    );
    println!(
        "sharded P={shards}: {:>4} outputs, logical state {}, {:?}",
        shd.metrics.outputs, shd.logical_join_state, shd_elapsed
    );

    let mut a = seq_sink.rows;
    let mut b: Vec<_> = shard_sinks.into_iter().flat_map(|s| s.rows).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "sharded output multiset must match sequential");
    assert_eq!(shd.logical_join_state, 0, "closed feed must purge fully");
    println!(
        "\noutput multisets match; speedup {:.2}x",
        seq_elapsed.as_secs_f64() / shd_elapsed.as_secs_f64()
    );
}
