//! Shared-state multi-query execution with the [`QueryRegistry`].
//!
//! Walks the registry's whole lifecycle over the multi-tenant workload:
//! admitting a batch of overlapping chain queries (shared sub-plans intern
//! onto shared operators), rejecting an unsafe query with its witness,
//! admitting another tenant mid-stream (it inherits the shared operators'
//! history), retiring one (shared purge rules re-tighten immediately), and
//! finishing with per-query outputs that match dedicated executors exactly.
//!
//! ```sh
//! cargo run --example multi_query            # default: 6 tenants, 50% overlap
//! cargo run --example multi_query -- 12 1.0  # custom tenant count / overlap
//! ```

use punctuated_cjq::core::plan::Plan;
use punctuated_cjq::core::prelude::*;
use punctuated_cjq::planner::fingerprint;
use punctuated_cjq::stream::exec::{ExecConfig, Executor};
use punctuated_cjq::stream::registry::QueryRegistry;
use punctuated_cjq::workload::multi::{self, MultiConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let queries: usize = args.next().map_or(6, |a| a.parse().expect("tenant count"));
    let overlap: f64 = args.next().map_or(0.5, |a| a.parse().expect("overlap"));

    let mcfg = MultiConfig {
        queries,
        overlap,
        rounds: 40,
        ..MultiConfig::default()
    };
    let tenant = multi::generate_queries(&mcfg);
    let feed = multi::generate_feed(&mcfg);
    let cfg = ExecConfig {
        record_outputs: true,
        verify_certificates: true,
        ..ExecConfig::default()
    };

    // The planner predicts sharing statically from canonical sub-plan
    // fingerprints; the registry must agree once everything is admitted.
    // The registry executes every tenant as a binary/MJoin expansion.
    let specs: Vec<(&Cjq, &Plan, fingerprint::PlanShape)> = tenant
        .queries
        .iter()
        .map(|(q, p)| (q, p, fingerprint::PlanShape::Binary))
        .collect();
    let predicted = fingerprint::sharing_report(&specs);
    println!(
        "{queries} tenants at overlap {overlap}: planner predicts {} shared operator node(s) \
         for {} subscriptions ({:.2} queries per node)",
        predicted.shared_nodes,
        predicted.subscriptions,
        predicted.ratio()
    );

    // Admit every tenant; the safety check runs per admission.
    let mut reg = QueryRegistry::new(tenant.schemes.clone(), cfg);
    let ids: Vec<_> = tenant
        .queries
        .iter()
        .map(|(q, p)| reg.try_admit(q, p, None).expect("tenants are safe"))
        .collect();
    println!(
        "registry: {} live node(s), {} subscription(s)\n",
        reg.live_nodes(),
        reg.subscribed_nodes()
    );
    assert_eq!(reg.live_nodes(), predicted.shared_nodes);

    // An unsafe query is rejected at admission with the lint witness —
    // nothing restarts. (A registry with no punctuation schemes can never
    // purge join state, so the same base query becomes inadmissible.)
    let mut unguarded = QueryRegistry::new(SchemeSet::new(), cfg);
    match unguarded.try_admit(&tenant.queries[0].0, &tenant.queries[0].1, None) {
        Err(rej) => println!("unguarded admission rejected: {}\n", rej.reason),
        Ok(_) => println!("(unguarded admission succeeded — unexpected)\n"),
    }

    // First half of the feed, then a mid-stream admission: the late tenant
    // is the base query again, so it subscribes to existing operators and
    // sees their accumulated probe state immediately.
    let split = feed.elements().len() / 2;
    for e in &feed.elements()[..split] {
        reg.try_push(e).expect("clean feed");
    }
    let (base_q, base_p) = &tenant.queries[0];
    let late = reg.try_admit(base_q, base_p, None).expect("still safe");
    println!(
        "mid-stream admission at element {split}: query {:?} joins {} live node(s) with history",
        late,
        reg.live_nodes()
    );

    // Retire the last original tenant: shared purge recipes re-tighten to
    // the meet of the *remaining* subscribers on the spot.
    let retired = *ids.last().unwrap();
    reg.retire(retired);
    println!(
        "retired query {:?}: {} node(s) remain live\n",
        retired,
        reg.live_nodes()
    );

    for e in &feed.elements()[split..] {
        reg.try_push(e).expect("clean feed");
    }
    let result = reg.finish();

    println!("per-tenant results (registry vs dedicated executor):");
    for (i, (q, p)) in tenant.queries.iter().enumerate() {
        let solo = Executor::compile(q, &tenant.schemes, p, cfg)
            .unwrap()
            .run(&feed);
        let rq = &result.queries[i];
        let full = i != retired.0;
        println!(
            "  q{i}: outputs {:6}  purged {:6}  {}",
            rq.stats.outputs,
            rq.stats.purged,
            if full && rq.outputs == solo.outputs {
                "== standalone, byte-identical"
            } else if full {
                "!! MISMATCH"
            } else {
                "(retired mid-stream: prefix only)"
            }
        );
        if full {
            assert_eq!(rq.outputs, solo.outputs, "q{i} must match its executor");
        }
    }
    let late_res = &result.queries[late.0];
    let base_res = &result.queries[0];
    assert_eq!(
        late_res.outputs.as_slice(),
        &base_res.outputs[base_res.outputs.len() - late_res.outputs.len()..],
        "late tenant gets exactly the base tenant's post-admission suffix"
    );
    println!(
        "  late admission: {} outputs — the base tenant's post-admission suffix, verified",
        late_res.stats.outputs
    );
    println!(
        "\nshared metrics: {} tuples in, {} outputs fanned out, {} rows purged once",
        result.metrics.tuples_in, result.metrics.outputs, result.metrics.purged
    );
}
