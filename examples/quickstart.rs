//! Quickstart: declare a query and punctuation schemes, check safety at
//! compile time, inspect the verdict, and run a tiny punctuated feed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::core::{purge_plan, safety};
use punctuated_cjq::stream::exec::{ExecConfig, Executor};
use punctuated_cjq::stream::sink::CallbackSink;
use punctuated_cjq::stream::source::Feed;
use punctuated_cjq::stream::tuple::Tuple;

fn main() {
    // 1. Declare the streams: orders(order_id, customer) and
    //    shipments(order_id, carrier).
    let mut catalog = Catalog::new();
    catalog.add_stream(StreamSchema::new("orders", ["order_id", "customer"]).unwrap());
    catalog.add_stream(StreamSchema::new("shipments", ["order_id", "carrier"]).unwrap());

    // 2. The continuous join query: orders ⋈ shipments ON order_id.
    let o = catalog.resolve("orders", "order_id").unwrap();
    let s = catalog.resolve("shipments", "order_id").unwrap();
    let query = Cjq::new(catalog, vec![JoinPredicate::new(o, s).unwrap()]).unwrap();

    // 3. The application emits punctuations on order_id from both streams
    //    (an order appears once; shipping for an order eventually completes).
    let schemes = SchemeSet::from_schemes([
        PunctuationScheme::on(0, &[0]).unwrap(),
        PunctuationScheme::on(1, &[0]).unwrap(),
    ]);

    // 4. The query register's compile-time safety check (Theorem 2).
    let report = safety::check_query(&query, &schemes);
    println!("query safe under {:?}: {}", report.method, report.safe);
    for p in &report.per_stream {
        println!("  join state of {} purgeable: {}", p.stream, p.purgeable);
    }

    // 5. How purging will actually work: the chained purge recipe.
    let all: Vec<StreamId> = query.stream_ids().collect();
    let recipe = purge_plan::derive_recipe(&query, &schemes, &all, StreamId(0)).unwrap();
    print!("{}", recipe.explain(&query));

    // 6. Run a small punctuated feed end-to-end through the vectorized
    //    micro-batch path, streaming each result row into a sink as it is
    //    produced (swap in a `CollectSink` to keep the rows, or a
    //    `CountSink` to only count them).
    let plan = Plan::mjoin_all(&query);
    let exec = Executor::compile(&query, &schemes, &plan, ExecConfig::default()).unwrap();
    let mut feed = Feed::new();
    for id in 0..5i64 {
        feed.push(Tuple::of(0, [Value::Int(id), Value::from("alice")]));
        // The order stream certifies order ids are unique.
        feed.push(Punctuation::with_constants(
            StreamId(0),
            2,
            &[(AttrId(0), Value::Int(id))],
        ));
        feed.push(Tuple::of(1, [Value::Int(id), Value::from("acme")]));
        // Shipping for the order completes.
        feed.push(Punctuation::with_constants(
            StreamId(1),
            2,
            &[(AttrId(0), Value::Int(id))],
        ));
    }
    let mut sink = CallbackSink::new(|row: &[Value]| println!("  result: {row:?}"));
    let result = exec.run_with_sink(&feed, &mut sink);
    println!(
        "processed {} tuples + {} punctuations -> {} results",
        result.metrics.tuples_in, result.metrics.puncts_in, result.metrics.outputs
    );
    println!(
        "peak join state: {} tuples; final join state: {} (bounded!)",
        result.metrics.peak_join_state,
        result.metrics.last().unwrap().join_state
    );

    // 7. Contrast: with punctuations only on the *carrier* attribute the
    //    query is unsafe and the register must reject it.
    let useless = SchemeSet::from_schemes([PunctuationScheme::on(1, &[1]).unwrap()]);
    let report = safety::check_query(&query, &useless);
    let (from, to) = report.witness().unwrap();
    println!(
        "with carrier-only punctuations: safe = {} (witness: {from} cannot be guarded against {to})",
        report.safe
    );
}
