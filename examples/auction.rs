//! The paper's running example (Example 1 / Figure 1): the online auction.
//!
//! Tracks "the difference between the final price and the initial price for
//! each item" by joining the item and bid streams on `itemid` and summing
//! `increase` per item — with the group-by *unblocked* by auction-close
//! punctuations, and the join state *purged* by both punctuation kinds.
//!
//! ```sh
//! cargo run --example auction
//! ```

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::stream::exec::{ExecConfig, Executor};
use punctuated_cjq::stream::groupby::Aggregate;
use punctuated_cjq::workload::auction::{self, AuctionConfig, BID};

fn run(cfg: &AuctionConfig, label: &str) {
    let (query, schemes) = auction::auction_query();
    let plan = Plan::mjoin_all(&query);
    let exec = Executor::compile(&query, &schemes, &plan, ExecConfig::default())
        .unwrap()
        .with_groupby(
            // GROUP BY bid.itemid, SUM(bid.increase)
            &[AttrRef {
                stream: BID,
                attr: AttrId(1),
            }],
            Aggregate::Sum(AttrRef {
                stream: BID,
                attr: AttrId(2),
            }),
        );
    let feed = auction::generate(cfg);
    let result = exec.run(&feed);

    println!("--- {label} ---");
    println!(
        "feed: {} elements ({} punctuations)",
        feed.len(),
        feed.punctuation_count()
    );
    println!(
        "join results: {}   aggregates emitted by punctuation: {}",
        result.metrics.outputs, result.metrics.aggregates_out
    );
    println!(
        "peak join state: {:>5}   final join state: {:>5}   open groups at end: {}",
        result.metrics.peak_join_state,
        result.metrics.last().unwrap().join_state,
        result.metrics.last().unwrap().groups,
    );
    if !result.aggregates.is_empty() {
        let sample: Vec<String> = result
            .aggregates
            .iter()
            .take(3)
            .map(|row| format!("item {} -> total increase {}", row[0], row[1]))
            .collect();
        println!("sample aggregates: {}", sample.join("; "));
    }
    // A simple state-over-time sketch.
    let sketch: Vec<String> = result
        .metrics
        .series
        .iter()
        .step_by((result.metrics.series.len() / 10).max(1))
        .map(|p| format!("{}@{}", p.join_state, p.at))
        .collect();
    println!("state curve (live@t): {}", sketch.join(" "));
    println!();
}

fn main() {
    let (query, schemes) = auction::auction_query();
    println!(
        "auction query safe: {} (schemes: {schemes})",
        punctuated_cjq::core::safety::is_query_safe(&query, &schemes),
    );
    println!();

    // With punctuations: bounded state, groups emitted as auctions close.
    run(
        &AuctionConfig {
            n_items: 300,
            bids_per_item: 5,
            ..AuctionConfig::default()
        },
        "with punctuations (safe, bounded)",
    );

    // Without punctuations: the same query needs state linear in the feed —
    // the Figure 1 "system will eventually break down" scenario.
    run(
        &AuctionConfig {
            n_items: 300,
            bids_per_item: 5,
            item_punctuations: false,
            bid_punctuations: false,
            ..AuctionConfig::default()
        },
        "without punctuations (state grows forever)",
    );

    // Only item-side punctuations: bids can be purged on item arrival
    // (unique itemid), but items wait for auctions that never close.
    run(
        &AuctionConfig {
            n_items: 300,
            bids_per_item: 5,
            bid_punctuations: false,
            ..AuctionConfig::default()
        },
        "item punctuations only (bid state bounded, item state grows)",
    );
}
