//! The §5.1 network-monitoring scenario: conjunctive joins, multi-attribute
//! punctuation schemes, and punctuation lifespans.
//!
//! `pkt(src, seqno, len) ⋈ ack(src, seqno, rtt)` — the end of a transmission
//! punctuates `(src, seqno)` pairs on both streams. Because TCP sequence
//! numbers cycle (~4.55 h per the RFC), the forever-semantics of
//! punctuations is wrong here: without lifespans, stale punctuations
//! eventually *forbid valid reused sequence numbers* and the punctuation
//! stores grow without bound. With lifespans, both problems disappear.
//!
//! ```sh
//! cargo run --example network_monitor
//! ```

use punctuated_cjq::core::prelude::*;
use punctuated_cjq::core::safety;
use punctuated_cjq::stream::exec::{ExecConfig, Executor};
use punctuated_cjq::workload::network::{self, NetworkConfig};

fn run(lifespan: Option<u64>, label: &str) {
    let (query, schemes) = network::network_query();
    let cfg = NetworkConfig {
        n_flows: 64,
        pkts_per_flow: 8,
        n_sources: 2,
        seq_space: 32, // small cycle: reuse happens quickly
        ack_prob: 0.9,
        ..NetworkConfig::default()
    };
    let feed = network::generate(&cfg);
    let exec_cfg = ExecConfig {
        punct_lifespan: lifespan,
        ..ExecConfig::default()
    };
    let exec = Executor::compile(&query, &schemes, &Plan::mjoin_all(&query), exec_cfg).unwrap();
    let result = exec.run(&feed);
    println!("--- {label} ---");
    println!(
        "matched packets: {:>4}   rejected (stale punctuation hit): {:>4}",
        result.metrics.outputs, result.metrics.violations
    );
    println!(
        "peak punctuation store: {:>4}   entries expired: {:>4}   peak join state: {:>3}",
        result.metrics.peak_punct_entries,
        result.metrics.punct_dropped,
        result.metrics.peak_join_state
    );
    println!();
}

fn main() {
    let (query, schemes) = network::network_query();
    let report = safety::check_query(&query, &schemes);
    println!(
        "network query safe: {} (method: {:?} — multi-attribute schemes need \
         the generalized punctuation graph)",
        report.safe, report.method
    );
    // The plain punctuation graph alone would call this unsafe:
    let pg = punctuated_cjq::core::pg::PunctuationGraph::of_query(&query, &schemes);
    println!(
        "plain PG edges: {} (Corollary 1 alone would reject); GPG hyper edges: {}",
        pg.edge_count(),
        punctuated_cjq::core::gpg::GeneralizedPunctuationGraph::of_query(&query, &schemes)
            .hyper_edges()
            .len()
    );
    println!();

    // Forever semantics: stale (src, seqno) punctuations break reuse.
    run(
        None,
        "forever punctuations (semantics break on seqno reuse)",
    );

    // Lifespan shorter than the sequence-number reuse distance (a source
    // reuses a seqno after ~250 feed elements here): correct and bounded.
    run(
        Some(120),
        "with punctuation lifespan (correct + bounded stores)",
    );
}
